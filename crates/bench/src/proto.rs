//! The trace-store wire protocol and the `tracestored` serve loop.
//!
//! A deliberately small, std-only protocol so N worker processes (or
//! machines) can share one warm [`crate::store::TraceStore`] instead of
//! each paying the cold recording. Every message is one length-prefixed
//! frame:
//!
//! ```text
//! frame    := len:u32le | body            (len = body length, <= 1 GiB)
//! request  := 'S' key                     STAT  — manifest only
//!           | 'G' key                     GET   — manifest + object
//!           | 'P' klen:u32le key slen:u32le sidecar object-image
//!                                         PUT   — publish a recording
//!           | 'L'                         LIST  — server statistics
//!           | 's' cid[32] fp:u64le        SIMSTAT — sim object present?
//!           | 'g' cid[32] fp:u64le        SIMGET  — fetch a sim object
//!           | 'p' sim-object              SIMPUT  — publish a sim object
//! response := status:u8 payload
//! status   := 0 OK | 1 NOT FOUND | 2 ERROR (payload = UTF-8 message)
//! ```
//!
//! `OK` payloads: STAT → encoded [`Sidecar`]; GET → `slen:u32le sidecar
//! object-image` (the object in stored form, so the server never
//! recompresses); PUT → `deduped:u8`; LIST → an encoded [`ServerStats`];
//! SIMSTAT → empty; SIMGET → an encoded CKSR
//! [`checkelide_uarch::SimObject`]; SIMPUT → empty. Sim requests address
//! memoized simulation results by `(trace CID, config fingerprint)` — the
//! server validates every SIMPUT body (decode + checksum + current
//! `SIM_SCHEMA_REV`) before storing, and the client re-validates every
//! SIMGET payload against the requested key.
//!
//! Trust model: both ends re-validate everything. The server decodes and
//! content-hash-verifies every PUT before storing it; the client verifies
//! every GET body against the manifest CID. A corrupt or truncated frame
//! on either side produces a typed [`ProtoError`] (server: an `ERROR`
//! frame, then connection close) and degrades to a cache miss — neither
//! end ever panics on wire data.
//!
//! The server ([`serve`]) follows the crate's pool idiom: a scoped thread
//! per connection with panic isolation, plus a poll-based accept loop so
//! an in-process server (tests, `perfstat`'s loopback benchmark) can be
//! stopped through an [`AtomicBool`].

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::store::{ObjectImage, Sidecar, TraceStore};
use checkelide_uarch::{SimObject, SIM_OBJECT_LEN};

/// Largest accepted frame body. PUT frames carry whole trace objects
/// (~100 MB compressed at full scale); this is a corruption guard.
pub const MAX_FRAME_BYTES: u64 = 1 << 30;

/// Response status: success.
pub const STATUS_OK: u8 = 0;
/// Response status: no entry under the requested key.
pub const STATUS_NOT_FOUND: u8 = 1;
/// Response status: typed failure (payload is a UTF-8 message).
pub const STATUS_ERROR: u8 = 2;

const OP_STAT: u8 = b'S';
const OP_GET: u8 = b'G';
const OP_PUT: u8 = b'P';
const OP_LIST: u8 = b'L';
const OP_SIMSTAT: u8 = b's';
const OP_SIMGET: u8 = b'g';
const OP_SIMPUT: u8 = b'p';

/// A typed protocol failure.
#[derive(Debug)]
pub enum ProtoError {
    /// Socket-level failure.
    Io(io::Error),
    /// Structurally invalid frame.
    Malformed(&'static str),
    /// The peer replied with an `ERROR` frame.
    Remote(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtoError::Remote(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Read one frame. `Ok(None)` on clean EOF before the first length byte.
fn read_frame(stream: &mut TcpStream, stop: Option<&AtomicBool>) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len = [0u8; 4];
    if !read_full(stream, &mut len, stop, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len) as u64;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::Malformed("frame exceeds size cap"));
    }
    let mut body = vec![0u8; len as usize];
    if !read_full(stream, &mut body, stop, false)? {
        return Err(ProtoError::Malformed("frame truncated"));
    }
    Ok(Some(body))
}

/// Read exactly `buf.len()` bytes, tolerating read timeouts while `stop`
/// stays false (the server uses short timeouts so shutdown is prompt).
/// Returns `false` on EOF: clean when `eof_ok` and no bytes were read,
/// an error mid-buffer.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: Option<&AtomicBool>,
    eof_ok: bool,
) -> Result<bool, ProtoError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
            return Ok(false);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(ProtoError::Malformed("unexpected end of stream"));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
                    && stop.is_some() =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

fn take_u32(body: &[u8], at: usize) -> Option<(u32, usize)> {
    let bytes = body.get(at..at + 4)?;
    Some((u32::from_le_bytes(bytes.try_into().ok()?), at + 4))
}

// ---------------------------------------------------------------------------
// Server statistics (LIST payload)
// ---------------------------------------------------------------------------

const LIST_MAGIC: [u8; 4] = *b"CKLS";
/// v2 appended the five sim-cache words (`sim_objects`,
/// `sim_object_bytes`, `sim_hits`, `sim_misses`, `sim_puts`).
const LIST_VERSION: u8 = 2;
const LIST_WORDS: usize = 16;

/// Store-wide statistics returned by the `LIST` op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Manifest entries in the store.
    pub entries: u64,
    /// Distinct objects (deduplicated trace bodies).
    pub objects: u64,
    /// Total on-disk object bytes (stored, possibly compressed).
    pub object_bytes: u64,
    /// Total raw (pre-compression) trace bytes the entries describe.
    pub raw_bytes: u64,
    /// Lookups served (STAT + GET).
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Manifests published.
    pub puts: u64,
    /// Publishes whose body already existed (cross-key dedup).
    pub dedup_puts: u64,
    /// Store bytes read since the server started.
    pub bytes_read: u64,
    /// Store bytes written since the server started.
    pub bytes_written: u64,
    /// Corrupt entries evicted.
    pub evictions: u64,
    /// Memoized sim objects in the store.
    pub sim_objects: u64,
    /// Total on-disk sim-object bytes.
    pub sim_object_bytes: u64,
    /// Sim lookups served.
    pub sim_hits: u64,
    /// Sim lookups that missed.
    pub sim_misses: u64,
    /// Sim objects published.
    pub sim_puts: u64,
}

impl ServerStats {
    fn gather(store: &TraceStore) -> ServerStats {
        let (entries, objects, object_bytes, raw_bytes) = store.summary();
        let (sim_objects, sim_object_bytes) = store.sim_summary();
        let s = store.stats();
        ServerStats {
            entries,
            objects,
            object_bytes,
            raw_bytes,
            hits: s.hits,
            misses: s.misses,
            puts: s.puts,
            dedup_puts: s.dedup_puts,
            bytes_read: s.bytes_read,
            bytes_written: s.bytes_written,
            evictions: s.evictions,
            sim_objects,
            sim_object_bytes,
            sim_hits: s.sim_hits,
            sim_misses: s.sim_misses,
            sim_puts: s.sim_puts,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 1 + LIST_WORDS * 8);
        out.extend_from_slice(&LIST_MAGIC);
        out.push(LIST_VERSION);
        for w in [
            self.entries,
            self.objects,
            self.object_bytes,
            self.raw_bytes,
            self.hits,
            self.misses,
            self.puts,
            self.dedup_puts,
            self.bytes_read,
            self.bytes_written,
            self.evictions,
            self.sim_objects,
            self.sim_object_bytes,
            self.sim_hits,
            self.sim_misses,
            self.sim_puts,
        ] {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Option<ServerStats> {
        if bytes.len() != 4 + 1 + LIST_WORDS * 8
            || bytes[..4] != LIST_MAGIC
            || bytes[4] != LIST_VERSION
        {
            return None;
        }
        let mut w = [0u64; LIST_WORDS];
        for (i, word) in w.iter_mut().enumerate() {
            *word = u64::from_le_bytes(bytes[5 + 8 * i..13 + 8 * i].try_into().ok()?);
        }
        Some(ServerStats {
            entries: w[0],
            objects: w[1],
            object_bytes: w[2],
            raw_bytes: w[3],
            hits: w[4],
            misses: w[5],
            puts: w[6],
            dedup_puts: w[7],
            bytes_read: w[8],
            bytes_written: w[9],
            evictions: w[10],
            sim_objects: w[11],
            sim_object_bytes: w[12],
            sim_hits: w[13],
            sim_misses: w[14],
            sim_puts: w[15],
        })
    }

    /// Compression ratio of the stored corpus (raw / stored), 1.0 when
    /// empty.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.object_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.object_bytes as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Serve `store` on `listener` until `stop` becomes true. One scoped
/// thread per connection, panic-isolated like [`crate::pool`]; a poll
/// loop on a non-blocking listener keeps shutdown prompt.
///
/// # Errors
///
/// Listener configuration failure; per-connection failures are contained.
pub fn serve(listener: &TcpListener, store: &TraceStore, stop: &AtomicBool) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    scope.spawn(move || {
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(stream, store, stop);
                        }));
                        if result.is_err() {
                            eprintln!("tracestored: connection handler panicked (isolated)");
                        }
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    eprintln!("tracestored: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    });
    Ok(())
}

fn handle_connection(mut stream: TcpStream, store: &TraceStore, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    // Short read timeout: read_full spins on it while checking `stop`, so
    // an idle keep-alive connection cannot block shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    loop {
        let body = match read_frame(&mut stream, Some(stop)) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean EOF or shutdown
            Err(ProtoError::Io(_)) => return,
            Err(e) => {
                // Corrupt framing: answer with a typed error, then drop
                // the connection (resynchronizing a byte stream after a
                // bad length prefix is not possible).
                let _ = respond_error(&mut stream, &e.to_string());
                return;
            }
        };
        match handle_request(&mut stream, store, &body) {
            Ok(()) => {}
            Err(ProtoError::Io(_)) => return,
            Err(e) => {
                // Malformed request body: typed error frame, then close.
                let _ = respond_error(&mut stream, &e.to_string());
                return;
            }
        }
    }
}

fn respond(stream: &mut TcpStream, status: u8, payload: &[u8]) -> io::Result<()> {
    let mut body = Vec::with_capacity(1 + payload.len());
    body.push(status);
    body.extend_from_slice(payload);
    write_frame(stream, &body)
}

fn respond_error(stream: &mut TcpStream, msg: &str) -> io::Result<()> {
    respond(stream, STATUS_ERROR, msg.as_bytes())
}

fn handle_request(
    stream: &mut TcpStream,
    store: &TraceStore,
    body: &[u8],
) -> Result<(), ProtoError> {
    match body.first().copied() {
        Some(OP_STAT) => {
            let key = std::str::from_utf8(&body[1..])
                .map_err(|_| ProtoError::Malformed("key is not UTF-8"))?;
            match store.stat(key) {
                Some(side) => respond(stream, STATUS_OK, &side.encode())?,
                None => respond(stream, STATUS_NOT_FOUND, &[])?,
            }
            Ok(())
        }
        Some(OP_GET) => {
            let key = std::str::from_utf8(&body[1..])
                .map_err(|_| ProtoError::Malformed("key is not UTF-8"))?;
            match store.get_image(key) {
                Some((side, image)) => {
                    let side_bytes = side.encode();
                    let mut payload =
                        Vec::with_capacity(4 + side_bytes.len() + image.len());
                    payload.extend_from_slice(&(side_bytes.len() as u32).to_le_bytes());
                    payload.extend_from_slice(&side_bytes);
                    payload.extend_from_slice(&image);
                    respond(stream, STATUS_OK, &payload)?;
                }
                None => respond(stream, STATUS_NOT_FOUND, &[])?,
            }
            Ok(())
        }
        Some(OP_PUT) => {
            let (side, image) = parse_put(body)?;
            // Verify content end to end before storing: the image must
            // decode and hash to the CID the manifest declares.
            let raw = ObjectImage::decode_verify(image, &side.cid)
                .ok_or(ProtoError::Malformed("object image fails verification"))?;
            if raw.len() as u64 != side.trace_bytes
                || image.len() as u64 != side.stored_bytes
            {
                return Err(ProtoError::Malformed("manifest/object size mismatch"));
            }
            match store.put_prepared(&side, image) {
                Ok(outcome) => respond(stream, STATUS_OK, &[u8::from(outcome.deduped)])?,
                Err(e) => respond_error(stream, &format!("store write failed: {e}"))?,
            }
            Ok(())
        }
        Some(OP_LIST) => {
            respond(stream, STATUS_OK, &ServerStats::gather(store).encode())?;
            Ok(())
        }
        Some(OP_SIMSTAT) => {
            let (cid, fp) = parse_sim_key(body)?;
            match store.sim_get(&cid, fp) {
                Some(_) => respond(stream, STATUS_OK, &[])?,
                None => respond(stream, STATUS_NOT_FOUND, &[])?,
            }
            Ok(())
        }
        Some(OP_SIMGET) => {
            let (cid, fp) = parse_sim_key(body)?;
            match store.sim_get(&cid, fp) {
                Some(obj) => respond(stream, STATUS_OK, &obj.encode())?,
                None => respond(stream, STATUS_NOT_FOUND, &[])?,
            }
            Ok(())
        }
        Some(OP_SIMPUT) => {
            // Full validation before storing: the body must decode (magic,
            // version, checksum) and carry the current schema revision.
            let obj = SimObject::decode(&body[1..])
                .filter(SimObject::is_current)
                .ok_or(ProtoError::Malformed("sim object fails verification"))?;
            match store.sim_put(&obj) {
                Ok(()) => respond(stream, STATUS_OK, &[])?,
                Err(e) => respond_error(stream, &format!("store write failed: {e}"))?,
            }
            Ok(())
        }
        _ => Err(ProtoError::Malformed("unknown op")),
    }
}

/// Parse a SIMSTAT/SIMGET request body: `op cid[32] fp:u64le`, exact
/// length.
fn parse_sim_key(body: &[u8]) -> Result<([u8; 32], u64), ProtoError> {
    if body.len() != 1 + 32 + 8 {
        return Err(ProtoError::Malformed("sim request length"));
    }
    let cid: [u8; 32] = body[1..33].try_into().expect("length checked");
    let fp = u64::from_le_bytes(body[33..41].try_into().expect("length checked"));
    Ok((cid, fp))
}

fn parse_put(body: &[u8]) -> Result<(Sidecar, &[u8]), ProtoError> {
    let (key_len, at) = take_u32(body, 1).ok_or(ProtoError::Malformed("PUT header"))?;
    let key_end = at
        .checked_add(key_len as usize)
        .filter(|&e| e <= body.len())
        .ok_or(ProtoError::Malformed("PUT key length"))?;
    let key = std::str::from_utf8(&body[at..key_end])
        .map_err(|_| ProtoError::Malformed("key is not UTF-8"))?;
    let (side_len, at) = take_u32(body, key_end).ok_or(ProtoError::Malformed("PUT header"))?;
    let side_end = at
        .checked_add(side_len as usize)
        .filter(|&e| e <= body.len())
        .ok_or(ProtoError::Malformed("PUT sidecar length"))?;
    let side = Sidecar::decode(&body[at..side_end])
        .ok_or(ProtoError::Malformed("PUT sidecar fails to decode"))?;
    if side.key != key {
        return Err(ProtoError::Malformed("PUT key/sidecar mismatch"));
    }
    Ok((side, &body[side_end..]))
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Client handle to a `tracestored` server. Thread-safe: one persistent
/// connection shared behind a mutex (requests are small and the pool's
/// workers spend their time simulating, not talking), re-established
/// once per failed request. All lookup failures — network, protocol, or
/// verification — degrade to `None`, i.e. a cache miss.
#[derive(Debug)]
pub struct RemoteStore {
    addr: String,
    conn: Mutex<Option<TcpStream>>,
    errors: AtomicU64,
}

impl RemoteStore {
    /// Connect to `addr` (`host:port`) and verify the server speaks the
    /// protocol with a `LIST` ping.
    ///
    /// # Errors
    ///
    /// Unresolvable address, connection failure, or a non-protocol peer.
    pub fn connect(addr: &str) -> io::Result<RemoteStore> {
        let store = RemoteStore {
            addr: addr.to_string(),
            conn: Mutex::new(None),
            errors: AtomicU64::new(0),
        };
        store
            .request(&[OP_LIST])
            .ok()
            .filter(|(status, payload)| {
                *status == STATUS_OK && ServerStats::decode(payload).is_some()
            })
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("no trace store service at {addr}"),
                )
            })?;
        Ok(store)
    }

    /// The server address this client talks to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests that failed (network or protocol) since connect.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no addresses");
        for sockaddr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sockaddr, Duration::from_secs(2)) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
                    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
                    return Ok(stream);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn request(&self, body: &[u8]) -> Result<(u8, Vec<u8>), ProtoError> {
        let mut guard = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        // One retry on a fresh connection: the common failure is a server
        // restart or idle-connection teardown between figure stages.
        for attempt in 0..2 {
            if guard.is_none() {
                match self.dial() {
                    Ok(stream) => *guard = Some(stream),
                    Err(e) => {
                        if attempt == 1 {
                            self.errors.fetch_add(1, Ordering::Relaxed);
                            return Err(e.into());
                        }
                        continue;
                    }
                }
            }
            let stream = guard.as_mut().expect("connection established");
            let outcome = write_frame(stream, body)
                .map_err(ProtoError::from)
                .and_then(|()| read_frame(stream, None));
            match outcome {
                Ok(Some(resp)) if !resp.is_empty() => {
                    let (status, payload) = (resp[0], resp[1..].to_vec());
                    if status == STATUS_ERROR {
                        // Typed server error: the connection itself is
                        // suspect (the server closes after errors).
                        *guard = None;
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        return Err(ProtoError::Remote(
                            String::from_utf8_lossy(&payload).into_owned(),
                        ));
                    }
                    return Ok((status, payload));
                }
                Ok(_) => {
                    *guard = None;
                    if attempt == 1 {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        return Err(ProtoError::Malformed("empty response"));
                    }
                }
                Err(e) => {
                    *guard = None;
                    if attempt == 1 {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("loop returns on second attempt")
    }

    /// STAT: fetch and validate the manifest for `key`.
    #[must_use]
    pub fn stat(&self, key: &str) -> Option<Sidecar> {
        let (status, payload) = self.request(&stat_request(key)).ok()?;
        if status != STATUS_OK {
            return None;
        }
        Sidecar::decode(&payload).filter(|side| side.key == key)
    }

    /// GET: fetch the manifest and the raw trace bytes for `key`,
    /// verifying the body against the manifest CID locally.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<(Sidecar, Vec<u8>)> {
        let mut body = Vec::with_capacity(1 + key.len());
        body.push(OP_GET);
        body.extend_from_slice(key.as_bytes());
        let (status, payload) = self.request(&body).ok()?;
        if status != STATUS_OK {
            return None;
        }
        let (side_len, at) = take_u32(&payload, 0)?;
        let side_end = at.checked_add(side_len as usize).filter(|&e| e <= payload.len())?;
        let side = Sidecar::decode(&payload[at..side_end]).filter(|s| s.key == key)?;
        let raw = ObjectImage::decode_verify(&payload[side_end..], &side.cid)?;
        if raw.len() as u64 != side.trace_bytes {
            return None;
        }
        Some((side, raw))
    }

    /// PUT: publish a manifest + pre-built object image. `false` (a
    /// non-event: the run keeps its live results) on any failure.
    #[must_use]
    pub fn put(&self, side: &Sidecar, image: &[u8]) -> bool {
        let side_bytes = side.encode();
        let mut body =
            Vec::with_capacity(1 + 8 + side.key.len() + side_bytes.len() + image.len());
        body.push(OP_PUT);
        body.extend_from_slice(&(side.key.len() as u32).to_le_bytes());
        body.extend_from_slice(side.key.as_bytes());
        body.extend_from_slice(&(side_bytes.len() as u32).to_le_bytes());
        body.extend_from_slice(&side_bytes);
        body.extend_from_slice(image);
        matches!(self.request(&body), Ok((STATUS_OK, _)))
    }

    /// LIST: fetch server-side statistics.
    #[must_use]
    pub fn list(&self) -> Option<ServerStats> {
        let (status, payload) = self.request(&[OP_LIST]).ok()?;
        if status != STATUS_OK {
            return None;
        }
        ServerStats::decode(&payload)
    }

    /// SIMSTAT: does the server hold a memoized simulation for
    /// `(cid, fingerprint)`?
    #[must_use]
    pub fn sim_stat(&self, cid: &[u8; 32], fingerprint: u64) -> bool {
        matches!(
            self.request(&sim_key_request(OP_SIMSTAT, cid, fingerprint)),
            Ok((STATUS_OK, _))
        )
    }

    /// SIMGET: fetch and locally re-validate the memoized simulation for
    /// `(cid, fingerprint)`.
    #[must_use]
    pub fn sim_get(&self, cid: &[u8; 32], fingerprint: u64) -> Option<SimObject> {
        let (status, payload) =
            self.request(&sim_key_request(OP_SIMGET, cid, fingerprint)).ok()?;
        if status != STATUS_OK || payload.len() != SIM_OBJECT_LEN {
            return None;
        }
        SimObject::decode(&payload).filter(|obj| {
            obj.is_current() && obj.trace_cid == *cid && obj.fingerprint == fingerprint
        })
    }

    /// SIMPUT: publish a memoized simulation. `false` (a non-event: the
    /// run keeps its live results) on any failure.
    #[must_use]
    pub fn sim_put(&self, obj: &SimObject) -> bool {
        let encoded = obj.encode();
        let mut body = Vec::with_capacity(1 + encoded.len());
        body.push(OP_SIMPUT);
        body.extend_from_slice(&encoded);
        matches!(self.request(&body), Ok((STATUS_OK, _)))
    }
}

fn sim_key_request(op: u8, cid: &[u8; 32], fingerprint: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(1 + 32 + 8);
    body.push(op);
    body.extend_from_slice(cid);
    body.extend_from_slice(&fingerprint.to_le_bytes());
    body
}

fn stat_request(key: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(1 + key.len());
    body.push(OP_STAT);
    body.extend_from_slice(key.as_bytes());
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_stats_round_trip() {
        let s = ServerStats {
            entries: 1,
            objects: 2,
            object_bytes: 3,
            raw_bytes: 12,
            hits: 4,
            misses: 5,
            puts: 6,
            dedup_puts: 7,
            bytes_read: 8,
            bytes_written: 9,
            evictions: 10,
            sim_objects: 11,
            sim_object_bytes: 12,
            sim_hits: 13,
            sim_misses: 14,
            sim_puts: 15,
        };
        let bytes = s.encode();
        assert_eq!(ServerStats::decode(&bytes), Some(s));
        assert!((s.compression_ratio() - 4.0).abs() < 1e-12);
        for len in 0..bytes.len() {
            assert!(ServerStats::decode(&bytes[..len]).is_none());
        }
        let mut bad = bytes;
        bad[0] = b'X';
        assert!(ServerStats::decode(&bad).is_none());
    }

    #[test]
    fn parse_sim_key_rejects_malformed_bodies() {
        assert!(parse_sim_key(&[OP_SIMGET]).is_err(), "empty key");
        assert!(parse_sim_key(&[OP_SIMGET; 40]).is_err(), "short key");
        assert!(parse_sim_key(&[OP_SIMGET; 42]).is_err(), "trailing bytes");
        let mut ok = vec![OP_SIMSTAT];
        ok.extend_from_slice(&[7u8; 32]);
        ok.extend_from_slice(&0x1234u64.to_le_bytes());
        let (cid, fp) = parse_sim_key(&ok).expect("valid sim key");
        assert_eq!(cid, [7u8; 32]);
        assert_eq!(fp, 0x1234);
    }

    #[test]
    fn parse_put_rejects_malformed_bodies() {
        assert!(parse_put(&[OP_PUT]).is_err());
        assert!(parse_put(&[OP_PUT, 255, 255, 255, 255]).is_err());
        // key_len pointing past the end
        let mut body = vec![OP_PUT];
        body.extend_from_slice(&100u32.to_le_bytes());
        body.extend_from_slice(b"short");
        assert!(parse_put(&body).is_err());
        // valid key, garbage sidecar
        let mut body = vec![OP_PUT];
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(b'k');
        body.extend_from_slice(&4u32.to_le_bytes());
        body.extend_from_slice(b"junk");
        assert!(parse_put(&body).is_err());
    }
}

//! Figure/table drivers: one function per experiment in the paper.
//!
//! Each driver returns serializable row structures (written as JSON under
//! `results/` by the binaries) and has a text renderer mirroring the
//! paper's presentation. `quick` mode shrinks workloads for CI/tests.

use crate::runner::{run_benchmark, RunConfig, RunOutput};
use crate::suite::{selected, Benchmark, Suite, BENCHMARKS};
use serde::Serialize;

fn cfg_scale(b: &Benchmark, quick: bool) -> i32 {
    if quick {
        (b.scale / 6).max(2)
    } else {
        b.scale
    }
}

fn iters(quick: bool) -> u32 {
    if quick {
        4
    } else {
        10
    }
}

/// Figure 1 row: the dynamic-instruction breakdown (percent).
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Row {
    /// Benchmark name.
    pub name: String,
    /// Suite name.
    pub suite: String,
    /// Checks %.
    pub checks: f64,
    /// Tags/Untags %.
    pub tags_untags: f64,
    /// Math assumptions %.
    pub math_assumptions: f64,
    /// Other optimized code %.
    pub other_optimized: f64,
    /// Rest of code %.
    pub rest_of_code: f64,
}

/// Run the Figure 1 characterization (all benchmarks, ProfileOnly).
pub fn fig1(quick: bool) -> Vec<Fig1Row> {
    BENCHMARKS
        .iter()
        .map(|b| {
            let out = run_benchmark(
                b,
                RunConfig::characterize()
                    .with_scale(cfg_scale(b, quick))
                    .with_iterations(iters(quick)),
            );
            let row = out.counters.fig1_row();
            Fig1Row {
                name: b.name.to_string(),
                suite: b.suite.name().to_string(),
                checks: row[0],
                tags_untags: row[1],
                math_assumptions: row[2],
                other_optimized: row[3],
                rest_of_code: row[4],
            }
        })
        .collect()
}

/// Render Figure 1 as an aligned table.
pub fn render_fig1(rows: &[Fig1Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>7} {:>11} {:>9} {:>10} {:>8}",
        "benchmark", "Checks", "Tags/Untags", "MathAssm", "OtherOpt", "Rest"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>6.1}% {:>10.1}% {:>8.1}% {:>9.1}% {:>7.1}%",
            r.name, r.checks, r.tags_untags, r.math_assumptions, r.other_optimized, r.rest_of_code
        );
    }
    for suite in [Suite::Octane, Suite::SunSpider, Suite::Kraken] {
        let sel: Vec<&Fig1Row> =
            rows.iter().filter(|r| r.suite == suite.name()).collect();
        if sel.is_empty() {
            continue;
        }
        let n = sel.len() as f64;
        let _ = writeln!(
            out,
            "{:<34} {:>6.1}% {:>10.1}% {:>8.1}% {:>9.1}% {:>7.1}%",
            format!("{} average", suite.name()),
            sel.iter().map(|r| r.checks).sum::<f64>() / n,
            sel.iter().map(|r| r.tags_untags).sum::<f64>() / n,
            sel.iter().map(|r| r.math_assumptions).sum::<f64>() / n,
            sel.iter().map(|r| r.other_optimized).sum::<f64>() / n,
            sel.iter().map(|r| r.rest_of_code).sum::<f64>() / n,
        );
    }
    out
}

/// Figure 2 row: check/untag overhead after object loads (percent of
/// dynamic instructions).
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: String,
    /// Whole-application percentage.
    pub whole: f64,
    /// Optimized-code-only percentage.
    pub optimized: f64,
    /// Whether this crosses the paper's 1 % selection threshold.
    pub selected_by_threshold: bool,
}

/// Run the Figure 2 characterization.
pub fn fig2(quick: bool) -> Vec<Fig2Row> {
    BENCHMARKS
        .iter()
        .map(|b| {
            let out = run_benchmark(
                b,
                RunConfig::characterize()
                    .with_scale(cfg_scale(b, quick))
                    .with_iterations(iters(quick)),
            );
            let whole = out.counters.fig2_whole_pct();
            Fig2Row {
                name: b.name.to_string(),
                suite: b.suite.name().to_string(),
                whole,
                optimized: out.counters.fig2_optimized_pct(),
                selected_by_threshold: whole > 1.0,
            }
        })
        .collect()
}

/// Render Figure 2.
pub fn render_fig2(rows: &[Fig2Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<34} {:>10} {:>12}", "benchmark", "whole app", "optimized");
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>9.1}% {:>11.1}% {}",
            r.name,
            r.whole,
            r.optimized,
            if r.selected_by_threshold { "*" } else { "" }
        );
    }
    let sel: Vec<&Fig2Row> = rows.iter().filter(|r| r.selected_by_threshold).collect();
    if !sel.is_empty() {
        let n = sel.len() as f64;
        let _ = writeln!(
            out,
            "{:<34} {:>9.1}% {:>11.1}%   (paper: 10.7% / 15.9%)",
            format!("selected average ({} benchmarks)", sel.len()),
            sel.iter().map(|r| r.whole).sum::<f64>() / n,
            sel.iter().map(|r| r.optimized).sum::<f64>() / n,
        );
    }
    out
}

/// Figure 3 row.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3RowOut {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: String,
    /// Monomorphic named-property loads (% of object loads).
    pub mono_properties: f64,
    /// Monomorphic elements-array loads (%).
    pub mono_elements: f64,
    /// Non-monomorphic property loads (%).
    pub poly_properties: f64,
    /// Non-monomorphic elements loads (%).
    pub poly_elements: f64,
}

/// Run Figure 3 over the selected benchmarks.
pub fn fig3(quick: bool) -> Vec<Fig3RowOut> {
    selected()
        .map(|b| {
            let out = run_benchmark(
                b,
                RunConfig::characterize()
                    .with_scale(cfg_scale(b, quick))
                    .with_iterations(iters(quick)),
            );
            Fig3RowOut {
                name: b.name.to_string(),
                suite: b.suite.name().to_string(),
                mono_properties: out.fig3.mono_properties,
                mono_elements: out.fig3.mono_elements,
                poly_properties: out.fig3.poly_properties,
                poly_elements: out.fig3.poly_elements,
            }
        })
        .collect()
}

/// Render Figure 3.
pub fn render_fig3(rows: &[Fig3RowOut]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "benchmark", "mono prop", "mono elem", "poly prop", "poly elem", "mono"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}% {:>6.1}%",
            r.name,
            r.mono_properties,
            r.mono_elements,
            r.poly_properties,
            r.poly_elements,
            r.mono_properties + r.mono_elements,
        );
    }
    let n = rows.len() as f64;
    if n > 0.0 {
        let mono = rows.iter().map(|r| r.mono_properties + r.mono_elements).sum::<f64>() / n;
        let _ = writeln!(out, "{:<34} {:>52.1}%  (paper: 66%)", "average monomorphic", mono);
    }
    out
}

/// Figure 8 + Figure 9 row (the runs are shared).
#[derive(Debug, Clone, Serialize)]
pub struct Fig89Row {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: String,
    /// Whole-application speedup (%).
    pub speedup_whole: f64,
    /// Optimized-code speedup (%).
    pub speedup_opt: f64,
    /// Whole-application energy reduction (%).
    pub energy_whole: f64,
    /// Optimized-code energy reduction (%).
    pub energy_opt: f64,
    /// Baseline dynamic µops (measured iteration).
    pub base_uops: u64,
    /// Mechanism dynamic µops.
    pub full_uops: u64,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// Mechanism cycles.
    pub full_cycles: u64,
    /// DL1 hit-rate: baseline → mechanism.
    pub dl1_hit: (f64, f64),
    /// L2 hit-rate: baseline → mechanism.
    pub l2_hit: (f64, f64),
    /// DTLB hit-rate: baseline → mechanism.
    pub dtlb_hit: (f64, f64),
    /// Class Cache hit rate on the mechanism run.
    pub class_cache_hit: f64,
}

/// Run Figures 8 and 9 over the selected benchmarks.
pub fn fig89(quick: bool) -> Vec<Fig89Row> {
    selected().map(|b| fig89_one(b, quick)).collect()
}

/// Run Figures 8/9 for one benchmark.
pub fn fig89_one(b: &Benchmark, quick: bool) -> Fig89Row {
    let base = run_benchmark(
        b,
        RunConfig::baseline_timed()
            .with_scale(cfg_scale(b, quick))
            .with_iterations(iters(quick)),
    );
    let full = run_benchmark(
        b,
        RunConfig::mechanism_timed()
            .with_scale(cfg_scale(b, quick))
            .with_iterations(iters(quick)),
    );
    assert_eq!(
        base.checksum, full.checksum,
        "{}: mechanism changed program semantics",
        b.name
    );
    let bs = base.sim.as_ref().expect("timed");
    let fs = full.sim.as_ref().expect("timed");
    Fig89Row {
        name: b.name.to_string(),
        suite: b.suite.name().to_string(),
        speedup_whole: bs.speedup_pct_over(fs),
        speedup_opt: bs.speedup_opt_pct_over(fs),
        energy_whole: bs.energy_reduction_pct(fs),
        energy_opt: bs.energy_reduction_opt_pct(fs),
        base_uops: base.uops,
        full_uops: full.uops,
        base_cycles: bs.cycles,
        full_cycles: fs.cycles,
        dl1_hit: (bs.dl1.hit_rate(), fs.dl1.hit_rate()),
        l2_hit: (bs.l2.hit_rate(), fs.l2.hit_rate()),
        dtlb_hit: (bs.dtlb.hit_rate(), fs.dtlb.hit_rate()),
        class_cache_hit: full.class_cache.hit_rate(),
    }
}

/// Render Figure 8 (speedup) and Figure 9 (energy).
pub fn render_fig89(rows: &[Fig89Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>11} {:>9} | {:>12} {:>10}",
        "benchmark", "speedup", "(opt)", "energy red.", "(opt)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>10.1}% {:>8.1}% | {:>11.1}% {:>9.1}%",
            r.name, r.speedup_whole, r.speedup_opt, r.energy_whole, r.energy_opt
        );
    }
    for suite in [Suite::Octane, Suite::SunSpider, Suite::Kraken] {
        let sel: Vec<&Fig89Row> = rows.iter().filter(|r| r.suite == suite.name()).collect();
        if sel.is_empty() {
            continue;
        }
        let n = sel.len() as f64;
        let _ = writeln!(
            out,
            "{:<34} {:>10.1}% {:>8.1}% | {:>11.1}% {:>9.1}%",
            format!("{} average", suite.name()),
            sel.iter().map(|r| r.speedup_whole).sum::<f64>() / n,
            sel.iter().map(|r| r.speedup_opt).sum::<f64>() / n,
            sel.iter().map(|r| r.energy_whole).sum::<f64>() / n,
            sel.iter().map(|r| r.energy_opt).sum::<f64>() / n,
        );
    }
    let n = rows.len() as f64;
    if n > 0.0 {
        let _ = writeln!(
            out,
            "{:<34} {:>10.1}% {:>8.1}% | {:>11.1}% {:>9.1}%   (paper: 5% / 7.1% | 4.5% / 6.5%)",
            "overall average",
            rows.iter().map(|r| r.speedup_whole).sum::<f64>() / n,
            rows.iter().map(|r| r.speedup_opt).sum::<f64>() / n,
            rows.iter().map(|r| r.energy_whole).sum::<f64>() / n,
            rows.iter().map(|r| r.energy_opt).sum::<f64>() / n,
        );
    }
    out
}

/// §5.3 overhead row.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Benchmark name.
    pub name: String,
    /// Hidden classes created (§5.3.1 warm-up ∝ this; paper: ≤32 for all
    /// but box2d/raytrace).
    pub hidden_classes: usize,
    /// Class Cache accesses on the measured iteration.
    pub cc_accesses: u64,
    /// Class Cache hit rate (§5.3.2–5.3.3; paper: >99.9 %).
    pub cc_hit_rate: f64,
    /// Objects allocated.
    pub objects: u64,
    /// Fraction of objects with more than one cache line (§5.3.4).
    pub multi_line_frac: f64,
    /// Memory increase from per-line headers, over multi-line objects'
    /// words (paper: 7–11 %).
    pub mem_increase_pct: f64,
    /// Fraction of property accesses hitting line 0 (paper: 79 %).
    pub line0_frac: f64,
}

/// Run the §5.3 overheads analysis over the selected benchmarks.
pub fn overheads(quick: bool) -> Vec<OverheadRow> {
    selected()
        .map(|b| {
            let out = run_benchmark(
                b,
                RunConfig::mechanism_timed()
                    .with_scale(cfg_scale(b, quick))
                    .with_iterations(iters(quick)),
            );
            overhead_row(b.name, &out)
        })
        .collect()
}

fn overhead_row(name: &str, out: &RunOutput) -> OverheadRow {
    let st = &out.obj_stats;
    let line_total = out.vm_stats.line0_accesses + out.vm_stats.linen_accesses;
    OverheadRow {
        name: name.to_string(),
        hidden_classes: out.hidden_classes,
        cc_accesses: out.class_cache.accesses,
        cc_hit_rate: out.class_cache.hit_rate(),
        objects: st.objects,
        multi_line_frac: if st.objects == 0 {
            0.0
        } else {
            st.multi_line_objects as f64 / st.objects as f64
        },
        mem_increase_pct: if st.object_words == 0 {
            0.0
        } else {
            100.0 * st.extra_header_words as f64 / st.object_words as f64
        },
        line0_frac: if line_total == 0 {
            1.0
        } else {
            out.vm_stats.line0_accesses as f64 / line_total as f64
        },
    }
}

/// Render the overheads table.
pub fn render_overheads(rows: &[OverheadRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>8} {:>12} {:>9} {:>10} {:>9} {:>8}",
        "benchmark", "classes", "cc accesses", "cc hit%", "multiline%", "mem+%", "line0%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>12} {:>8.2}% {:>9.1}% {:>8.1}% {:>7.1}%",
            r.name,
            r.hidden_classes,
            r.cc_accesses,
            100.0 * r.cc_hit_rate,
            100.0 * r.multi_line_frac,
            r.mem_increase_pct,
            100.0 * r.line0_frac,
        );
    }
    out
}

/// Save any serializable result set as JSON under `results/`.
///
/// # Errors
///
/// I/O errors from creating the directory or writing the file.
pub fn save_json<T: Serialize>(name: &str, rows: &T) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let path = format!("results/{name}.json");
    let json = serde_json::to_string_pretty(rows)?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::find;

    #[test]
    fn fig89_one_quick_is_consistent() {
        let b = find("richards").expect("registered");
        let row = fig89_one(b, true);
        assert_eq!(row.name, "richards");
        assert!(row.base_uops > 0 && row.full_uops > 0);
        assert!(row.base_cycles > 0 && row.full_cycles > 0);
        assert!(row.class_cache_hit > 0.9);
    }

    #[test]
    fn renderers_are_total() {
        let rows = vec![Fig1Row {
            name: "x".into(),
            suite: "Octane".into(),
            checks: 5.0,
            tags_untags: 4.0,
            math_assumptions: 1.0,
            other_optimized: 40.0,
            rest_of_code: 50.0,
        }];
        assert!(render_fig1(&rows).contains("Octane average"));
        let rows = vec![Fig2Row {
            name: "x".into(),
            suite: "Kraken".into(),
            whole: 12.0,
            optimized: 20.0,
            selected_by_threshold: true,
        }];
        assert!(render_fig2(&rows).contains("selected average"));
    }
}

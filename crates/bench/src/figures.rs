//! Figure/table drivers: one function per experiment in the paper.
//!
//! Each driver fans its (benchmark × configuration) cells out across the
//! [`crate::pool`] worker pool and returns a [`FigureReport`]: rows in
//! registry order, per-cell observability metadata, and any failures —
//! a panicking or erroring benchmark becomes a reported [`CellError`]
//! instead of aborting the run. Rows are written as JSON under `results/`
//! by the binaries, with a per-run `results/run_meta.json` capturing
//! wall-time, dynamic µops, µop throughput and worker id for every cell.
//! `quick` mode shrinks workloads for CI/tests.

use crate::json::{json_obj, Json, ToJson};
use crate::pool::{self, CellError};
use crate::runner::{
    try_run_benchmark_cached, CacheDisposition, RunConfig, RunError, RunOutput, SimTelemetry,
};
use crate::suite::{selected, Benchmark, Suite, BENCHMARKS};
use crate::tracecache::TraceCache;
use checkelide_engine::VmStats;

fn cfg_scale(b: &Benchmark, quick: bool) -> i32 {
    if quick {
        (b.scale / 6).max(2)
    } else {
        b.scale
    }
}

fn iters(quick: bool) -> u32 {
    if quick {
        4
    } else {
        10
    }
}

// ---------------------------------------------------------------------------
// Pool plumbing shared by all drivers
// ---------------------------------------------------------------------------

/// Environment variable naming a benchmark whose cells deliberately panic.
///
/// Used to exercise the fault-isolation path end to end: the cell shows up
/// in the failure summary while every sibling's results are still produced
/// and saved.
pub const INJECT_PANIC_ENV: &str = "CHECKELIDE_INJECT_PANIC";

/// Per-cell observability metadata persisted to `results/run_meta.json`.
#[derive(Debug, Clone)]
pub struct CellMeta {
    /// Figure/table this cell belongs to (e.g. `"fig1"`).
    pub figure: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Worker thread that executed the cell.
    pub worker: usize,
    /// Wall-clock milliseconds spent in the cell.
    pub wall_ms: f64,
    /// Dynamic µops measured by the cell (0 on failure).
    pub uops: u64,
    /// µop throughput (dynamic µops per wall-clock second).
    pub uops_per_sec: f64,
    /// Whether the cell succeeded.
    pub ok: bool,
    /// Trace-cache disposition: `"off"`, `"hit"` or `"miss"`.
    pub cache: String,
    /// Timed runs served from memoized sim results (no `CoreSim` pass).
    pub sim_hits: u64,
    /// Timed runs that had to run `CoreSim` live.
    pub sim_misses: u64,
    /// Verify-mode hits whose re-simulation diverged from the stored
    /// result (always 0 on a healthy store).
    pub sim_verify_mismatches: u64,
    /// Regions compiled by the cell's VM (region execution tier).
    pub regions_compiled: u64,
    /// Plan-walk → compiled-region tier-up events.
    pub tier_up_events: u64,
    /// Code-cache occupancy (bytes) at the end of the run.
    pub code_cache_bytes: u64,
    /// Code-cache LRU evictions.
    pub evictions: u64,
    /// Region-exit deopt bridges taken.
    pub deopt_bridges: u64,
    /// Failure message, if any.
    pub error: Option<String>,
}

impl ToJson for CellMeta {
    fn to_json(&self) -> Json {
        json_obj!(
            self,
            figure,
            benchmark,
            worker,
            wall_ms,
            uops,
            uops_per_sec,
            ok,
            cache,
            sim_hits,
            sim_misses,
            sim_verify_mismatches,
            regions_compiled,
            tier_up_events,
            code_cache_bytes,
            evictions,
            deopt_bridges,
            error
        )
    }
}

/// The result of one figure driver: ordered rows + failures + metadata.
#[derive(Debug)]
pub struct FigureReport<R> {
    /// Figure/table name.
    pub figure: &'static str,
    /// Successful rows, in benchmark-registry order.
    pub rows: Vec<R>,
    /// Failed cells (panics and typed `RunError`s).
    pub failures: Vec<CellError>,
    /// Per-cell metadata (successes and failures, registry order).
    pub cells: Vec<CellMeta>,
}

impl<R> FigureReport<R> {
    /// Extract the rows, panicking if any cell failed (the behavior of the
    /// pre-pool harness; tests and compat wrappers use this).
    ///
    /// # Panics
    ///
    /// If any cell failed.
    pub fn expect_rows(self) -> Vec<R> {
        if let Some(first) = self.failures.first() {
            panic!("{} of {} {} cells failed; first: {first}",
                self.failures.len(), self.cells.len(), self.figure);
        }
        self.rows
    }
}

/// Render a failure summary (empty string when there are no failures).
pub fn render_failures(failures: &[CellError]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if failures.is_empty() {
        return out;
    }
    let _ = writeln!(out, "{} cell(s) FAILED:", failures.len());
    for f in failures {
        let _ = writeln!(out, "  {f}");
    }
    out
}

/// Fan one figure's benchmark cells across the pool and assemble a report.
///
/// `f` runs one benchmark and returns its row, the dynamic-µop count for
/// the throughput metadata, the trace-cache disposition, and the cell's
/// sim-cache telemetry.
fn run_figure<R, F>(
    figure: &'static str,
    benches: Vec<&'static Benchmark>,
    jobs: usize,
    f: F,
) -> FigureReport<R>
where
    R: Send,
    F: Fn(
            &'static Benchmark,
        ) -> Result<(R, u64, CacheDisposition, SimTelemetry, VmStats), RunError>
        + Sync,
{
    // Static proof that the cell inputs and outputs may cross threads.
    // (The engine's `Rc`-based internals never do: each cell builds its
    // own private `Vm` inside `try_run_benchmark`.)
    pool::assert_send_sync::<(&'static Benchmark, RunConfig)>();
    fn assert_out_send<T: Send>() {}
    assert_out_send::<(RunOutput, Result<(), RunError>)>();

    let inject = std::env::var(INJECT_PANIC_ENV).ok();
    let cells: Vec<(String, &'static Benchmark)> =
        benches.iter().map(|b| (format!("{figure}/{}", b.name), *b)).collect();
    let outcomes = pool::run_cells(cells, jobs, |b: &&'static Benchmark| {
        let b: &'static Benchmark = b;
        if inject.as_deref() == Some(b.name) {
            panic!("injected panic via {INJECT_PANIC_ENV} for fault-isolation testing");
        }
        f(b)
    });

    let mut report =
        FigureReport { figure, rows: Vec::new(), failures: Vec::new(), cells: Vec::new() };
    for (outcome, bench) in outcomes.into_iter().zip(benches) {
        let wall_ms = outcome.wall.as_secs_f64() * 1e3;
        let mut meta = CellMeta {
            figure: figure.to_string(),
            benchmark: bench.name.to_string(),
            worker: outcome.worker,
            wall_ms,
            uops: 0,
            uops_per_sec: 0.0,
            ok: false,
            cache: CacheDisposition::Off.label().to_string(),
            sim_hits: 0,
            sim_misses: 0,
            sim_verify_mismatches: 0,
            regions_compiled: 0,
            tier_up_events: 0,
            code_cache_bytes: 0,
            evictions: 0,
            deopt_bridges: 0,
            error: None,
        };
        match outcome.result {
            Ok(Ok((row, uops, cache, sim_tel, stats))) => {
                meta.cache = cache.label().to_string();
                meta.sim_hits = sim_tel.hits;
                meta.sim_misses = sim_tel.misses;
                meta.sim_verify_mismatches = sim_tel.verify_mismatches;
                meta.uops = uops;
                meta.uops_per_sec =
                    if wall_ms > 0.0 { uops as f64 / (wall_ms / 1e3) } else { 0.0 };
                meta.ok = true;
                meta.regions_compiled = stats.regions_compiled;
                meta.tier_up_events = stats.tier_up_events;
                meta.code_cache_bytes = stats.code_cache_bytes;
                meta.evictions = stats.evictions;
                meta.deopt_bridges = stats.deopt_bridges;
                report.rows.push(row);
            }
            Ok(Err(run_err)) => {
                let err = CellError { label: outcome.label, message: run_err.to_string() };
                meta.error = Some(err.message.clone());
                report.failures.push(err);
            }
            Err(cell_err) => {
                meta.error = Some(cell_err.message.clone());
                report.failures.push(cell_err);
            }
        }
        report.cells.push(meta);
    }
    report
}

/// Trace-cache activity summary persisted inside `run_meta.json`.
#[derive(Debug, Clone)]
pub struct TraceCacheMeta {
    /// Whether the cache was enabled for the run.
    pub enabled: bool,
    /// Backend kind: `"off"`, `"local"`, or `"tcp"`.
    pub backend: String,
    /// Cache directory (empty when disabled or remote-only).
    pub dir: String,
    /// Server address (empty unless the backend is `"tcp"`).
    pub remote: String,
    /// Cells served from recorded traces (local + remote).
    pub hits: u64,
    /// Hits satisfied by the local store.
    pub local_hits: u64,
    /// Hits satisfied by a trace-store server.
    pub remote_hits: u64,
    /// Cells executed live.
    pub misses: u64,
    /// Entries recorded to the store.
    pub stores: u64,
    /// Recordings whose object body already existed (content dedup).
    pub dedup_stores: u64,
    /// Bytes read from store objects (stored, possibly compressed, form).
    pub bytes_read: u64,
    /// Bytes written to store objects (stored form; 0 for deduped puts).
    pub bytes_written: u64,
    /// Uncompressed trace bytes behind the writes.
    pub raw_bytes_written: u64,
    /// Remote requests that failed and degraded to a miss.
    pub remote_errors: u64,
    /// Sim-result cache mode: `"off"`, `"on"`, or `"verify"`.
    pub sim_mode: String,
    /// Timed cells served from memoized sim results.
    pub sim_hits: u64,
    /// Timed cells that ran `CoreSim` live.
    pub sim_misses: u64,
    /// Sim results published to the store.
    pub sim_stores: u64,
    /// Verify-mode re-simulations that diverged from the stored result.
    pub sim_verify_mismatches: u64,
}

impl TraceCacheMeta {
    /// Snapshot a cache's current counters.
    pub fn snapshot(cache: &TraceCache) -> TraceCacheMeta {
        let s = cache.stats();
        TraceCacheMeta {
            enabled: cache.enabled(),
            backend: cache.backend_label().to_string(),
            dir: cache.dir().map(|d| d.display().to_string()).unwrap_or_default(),
            remote: cache.remote_addr().unwrap_or_default().to_string(),
            hits: s.hits,
            local_hits: s.local_hits,
            remote_hits: s.remote_hits,
            misses: s.misses,
            stores: s.stores,
            dedup_stores: s.dedup_stores,
            bytes_read: s.bytes_read,
            bytes_written: s.bytes_written,
            raw_bytes_written: s.raw_bytes_written,
            remote_errors: s.remote_errors,
            sim_mode: cache.sim_mode().label().to_string(),
            sim_hits: s.sim_hits,
            sim_misses: s.sim_misses,
            sim_stores: s.sim_stores,
            sim_verify_mismatches: s.sim_verify_mismatches,
        }
    }
}

impl ToJson for TraceCacheMeta {
    fn to_json(&self) -> Json {
        json_obj!(
            self,
            enabled,
            backend,
            dir,
            remote,
            hits,
            local_hits,
            remote_hits,
            misses,
            stores,
            dedup_stores,
            bytes_read,
            bytes_written,
            raw_bytes_written,
            remote_errors,
            sim_mode,
            sim_hits,
            sim_misses,
            sim_stores,
            sim_verify_mismatches
        )
    }
}

/// Whole-run metadata accumulated across figure reports and persisted to
/// `results/run_meta.json`.
#[derive(Debug)]
pub struct RunMeta {
    /// Worker count used for the run.
    pub jobs: usize,
    /// Whether `--quick` scaling was in effect.
    pub quick: bool,
    /// Total wall-clock milliseconds of the whole run (filled at save).
    pub total_wall_ms: f64,
    /// Trace-cache activity (`None` until [`RunMeta::set_trace_cache`]).
    pub trace_cache: Option<TraceCacheMeta>,
    /// Every executed cell, in execution-registry order.
    pub cells: Vec<CellMeta>,
}

impl RunMeta {
    /// Start collecting for a run with `jobs` workers.
    pub fn new(jobs: usize, quick: bool) -> RunMeta {
        RunMeta { jobs, quick, total_wall_ms: 0.0, trace_cache: None, cells: Vec::new() }
    }

    /// Absorb one figure report's cell metadata.
    pub fn absorb<R>(&mut self, report: &FigureReport<R>) {
        self.cells.extend(report.cells.iter().cloned());
    }

    /// Record the run's final trace-cache counters.
    pub fn set_trace_cache(&mut self, cache: &TraceCache) {
        self.trace_cache = Some(TraceCacheMeta::snapshot(cache));
    }

    /// Number of failed cells.
    pub fn failed_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.ok).count()
    }

    /// Number of cells served from the trace cache.
    pub fn cache_hits(&self) -> usize {
        self.cells.iter().filter(|c| c.cache == "hit").count()
    }

    /// Total sim-cache hits across all cells.
    pub fn sim_hits(&self) -> u64 {
        self.cells.iter().map(|c| c.sim_hits).sum()
    }

    /// Total sim-cache misses (live `CoreSim` passes) across all cells.
    pub fn sim_misses(&self) -> u64 {
        self.cells.iter().map(|c| c.sim_misses).sum()
    }

    /// Total verify-mode mismatches across all cells.
    pub fn sim_verify_mismatches(&self) -> u64 {
        self.cells.iter().map(|c| c.sim_verify_mismatches).sum()
    }

    /// Persist to `results/run_meta.json`.
    ///
    /// # Errors
    ///
    /// I/O errors from creating the directory or writing the file.
    pub fn save(&self) -> std::io::Result<()> {
        save_json("run_meta", self)
    }
}

impl ToJson for RunMeta {
    fn to_json(&self) -> Json {
        json_obj!(self, jobs, quick, total_wall_ms, trace_cache, cells)
    }
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

/// Figure 1 row: the dynamic-instruction breakdown (percent).
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Benchmark name.
    pub name: String,
    /// Suite name.
    pub suite: String,
    /// Checks %.
    pub checks: f64,
    /// Tags/Untags %.
    pub tags_untags: f64,
    /// Math assumptions %.
    pub math_assumptions: f64,
    /// Other optimized code %.
    pub other_optimized: f64,
    /// Rest of code %.
    pub rest_of_code: f64,
}

impl ToJson for Fig1Row {
    fn to_json(&self) -> Json {
        json_obj!(
            self,
            name,
            suite,
            checks,
            tags_untags,
            math_assumptions,
            other_optimized,
            rest_of_code
        )
    }
}

/// Run the Figure 1 characterization across the pool (no trace cache).
pub fn fig1_report(quick: bool, jobs: usize) -> FigureReport<Fig1Row> {
    fig1_report_cached(quick, jobs, &TraceCache::disabled())
}

/// Run the Figure 1 characterization across the pool, recording to /
/// replaying from `cache` where possible.
pub fn fig1_report_cached(
    quick: bool,
    jobs: usize,
    cache: &TraceCache,
) -> FigureReport<Fig1Row> {
    run_figure("fig1", BENCHMARKS.iter().collect(), jobs, move |b| {
        let (out, disp, sim_tel) = try_run_benchmark_cached(
            b,
            RunConfig::characterize()
                .with_scale(cfg_scale(b, quick))
                .with_iterations(iters(quick)),
            cache,
        )?;
        let row = out.counters.fig1_row();
        Ok((
            Fig1Row {
                name: b.name.to_string(),
                suite: b.suite.name().to_string(),
                checks: row[0],
                tags_untags: row[1],
                math_assumptions: row[2],
                other_optimized: row[3],
                rest_of_code: row[4],
            },
            out.uops,
            disp,
            sim_tel,
            out.vm_stats,
        ))
    })
}

/// Run the Figure 1 characterization serially (compat wrapper).
pub fn fig1(quick: bool) -> Vec<Fig1Row> {
    fig1_report(quick, 1).expect_rows()
}

/// Render Figure 1 as an aligned table.
pub fn render_fig1(rows: &[Fig1Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>7} {:>11} {:>9} {:>10} {:>8}",
        "benchmark", "Checks", "Tags/Untags", "MathAssm", "OtherOpt", "Rest"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>6.1}% {:>10.1}% {:>8.1}% {:>9.1}% {:>7.1}%",
            r.name, r.checks, r.tags_untags, r.math_assumptions, r.other_optimized, r.rest_of_code
        );
    }
    for suite in [Suite::Octane, Suite::SunSpider, Suite::Kraken] {
        let sel: Vec<&Fig1Row> =
            rows.iter().filter(|r| r.suite == suite.name()).collect();
        if sel.is_empty() {
            continue;
        }
        let n = sel.len() as f64;
        let _ = writeln!(
            out,
            "{:<34} {:>6.1}% {:>10.1}% {:>8.1}% {:>9.1}% {:>7.1}%",
            format!("{} average", suite.name()),
            sel.iter().map(|r| r.checks).sum::<f64>() / n,
            sel.iter().map(|r| r.tags_untags).sum::<f64>() / n,
            sel.iter().map(|r| r.math_assumptions).sum::<f64>() / n,
            sel.iter().map(|r| r.other_optimized).sum::<f64>() / n,
            sel.iter().map(|r| r.rest_of_code).sum::<f64>() / n,
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// Figure 2 row: check/untag overhead after object loads (percent of
/// dynamic instructions).
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: String,
    /// Whole-application percentage.
    pub whole: f64,
    /// Optimized-code-only percentage.
    pub optimized: f64,
    /// Whether this crosses the paper's 1 % selection threshold.
    pub selected_by_threshold: bool,
}

impl ToJson for Fig2Row {
    fn to_json(&self) -> Json {
        json_obj!(self, name, suite, whole, optimized, selected_by_threshold)
    }
}

/// Run the Figure 2 characterization across the pool (no trace cache).
pub fn fig2_report(quick: bool, jobs: usize) -> FigureReport<Fig2Row> {
    fig2_report_cached(quick, jobs, &TraceCache::disabled())
}

/// Run the Figure 2 characterization across the pool, reusing `cache`.
///
/// Figure 2 uses the same `RunConfig::characterize()` key as Figure 1, so
/// a warm cache serves every cell from Figure 1's recorded traces.
pub fn fig2_report_cached(
    quick: bool,
    jobs: usize,
    cache: &TraceCache,
) -> FigureReport<Fig2Row> {
    run_figure("fig2", BENCHMARKS.iter().collect(), jobs, move |b| {
        let (out, disp, sim_tel) = try_run_benchmark_cached(
            b,
            RunConfig::characterize()
                .with_scale(cfg_scale(b, quick))
                .with_iterations(iters(quick)),
            cache,
        )?;
        let whole = out.counters.fig2_whole_pct();
        Ok((
            Fig2Row {
                name: b.name.to_string(),
                suite: b.suite.name().to_string(),
                whole,
                optimized: out.counters.fig2_optimized_pct(),
                selected_by_threshold: whole > 1.0,
            },
            out.uops,
            disp,
            sim_tel,
            out.vm_stats,
        ))
    })
}

/// Run the Figure 2 characterization serially (compat wrapper).
pub fn fig2(quick: bool) -> Vec<Fig2Row> {
    fig2_report(quick, 1).expect_rows()
}

/// Render Figure 2.
pub fn render_fig2(rows: &[Fig2Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<34} {:>10} {:>12}", "benchmark", "whole app", "optimized");
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>9.1}% {:>11.1}% {}",
            r.name,
            r.whole,
            r.optimized,
            if r.selected_by_threshold { "*" } else { "" }
        );
    }
    let sel: Vec<&Fig2Row> = rows.iter().filter(|r| r.selected_by_threshold).collect();
    if !sel.is_empty() {
        let n = sel.len() as f64;
        let _ = writeln!(
            out,
            "{:<34} {:>9.1}% {:>11.1}%   (paper: 10.7% / 15.9%)",
            format!("selected average ({} benchmarks)", sel.len()),
            sel.iter().map(|r| r.whole).sum::<f64>() / n,
            sel.iter().map(|r| r.optimized).sum::<f64>() / n,
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

/// Figure 3 row.
#[derive(Debug, Clone)]
pub struct Fig3RowOut {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: String,
    /// Monomorphic named-property loads (% of object loads).
    pub mono_properties: f64,
    /// Monomorphic elements-array loads (%).
    pub mono_elements: f64,
    /// Non-monomorphic property loads (%).
    pub poly_properties: f64,
    /// Non-monomorphic elements loads (%).
    pub poly_elements: f64,
}

impl ToJson for Fig3RowOut {
    fn to_json(&self) -> Json {
        json_obj!(
            self,
            name,
            suite,
            mono_properties,
            mono_elements,
            poly_properties,
            poly_elements
        )
    }
}

/// Run Figure 3 over the selected benchmarks across the pool (no cache).
pub fn fig3_report(quick: bool, jobs: usize) -> FigureReport<Fig3RowOut> {
    fig3_report_cached(quick, jobs, &TraceCache::disabled())
}

/// Run Figure 3 across the pool, reusing `cache`.
///
/// Figure 3 shares Figure 1's `RunConfig::characterize()` cache key, so a
/// warm cache serves its (selected-benchmark) cells without re-executing.
pub fn fig3_report_cached(
    quick: bool,
    jobs: usize,
    cache: &TraceCache,
) -> FigureReport<Fig3RowOut> {
    run_figure("fig3", selected().collect(), jobs, move |b| {
        let (out, disp, sim_tel) = try_run_benchmark_cached(
            b,
            RunConfig::characterize()
                .with_scale(cfg_scale(b, quick))
                .with_iterations(iters(quick)),
            cache,
        )?;
        Ok((
            Fig3RowOut {
                name: b.name.to_string(),
                suite: b.suite.name().to_string(),
                mono_properties: out.fig3.mono_properties,
                mono_elements: out.fig3.mono_elements,
                poly_properties: out.fig3.poly_properties,
                poly_elements: out.fig3.poly_elements,
            },
            out.uops,
            disp,
            sim_tel,
            out.vm_stats,
        ))
    })
}

/// Run Figure 3 serially (compat wrapper).
pub fn fig3(quick: bool) -> Vec<Fig3RowOut> {
    fig3_report(quick, 1).expect_rows()
}

/// Render Figure 3.
pub fn render_fig3(rows: &[Fig3RowOut]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "benchmark", "mono prop", "mono elem", "poly prop", "poly elem", "mono"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}% {:>6.1}%",
            r.name,
            r.mono_properties,
            r.mono_elements,
            r.poly_properties,
            r.poly_elements,
            r.mono_properties + r.mono_elements,
        );
    }
    let n = rows.len() as f64;
    if n > 0.0 {
        let mono = rows.iter().map(|r| r.mono_properties + r.mono_elements).sum::<f64>() / n;
        let _ = writeln!(out, "{:<34} {:>52.1}%  (paper: 66%)", "average monomorphic", mono);
    }
    out
}

// ---------------------------------------------------------------------------
// Figures 8 & 9
// ---------------------------------------------------------------------------

/// Figure 8 + Figure 9 row (the runs are shared).
#[derive(Debug, Clone)]
pub struct Fig89Row {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: String,
    /// Whole-application speedup (%).
    pub speedup_whole: f64,
    /// Optimized-code speedup (%).
    pub speedup_opt: f64,
    /// Whole-application energy reduction (%).
    pub energy_whole: f64,
    /// Optimized-code energy reduction (%).
    pub energy_opt: f64,
    /// Baseline dynamic µops (measured iteration).
    pub base_uops: u64,
    /// Mechanism dynamic µops.
    pub full_uops: u64,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// Mechanism cycles.
    pub full_cycles: u64,
    /// DL1 hit-rate: baseline → mechanism.
    pub dl1_hit: (f64, f64),
    /// L2 hit-rate: baseline → mechanism.
    pub l2_hit: (f64, f64),
    /// DTLB hit-rate: baseline → mechanism.
    pub dtlb_hit: (f64, f64),
    /// Class Cache hit rate on the mechanism run.
    pub class_cache_hit: f64,
}

impl ToJson for Fig89Row {
    fn to_json(&self) -> Json {
        json_obj!(
            self,
            name,
            suite,
            speedup_whole,
            speedup_opt,
            energy_whole,
            energy_opt,
            base_uops,
            full_uops,
            base_cycles,
            full_cycles,
            dl1_hit,
            l2_hit,
            dtlb_hit,
            class_cache_hit
        )
    }
}

/// Run Figures 8 and 9 over the selected benchmarks across the pool (no
/// trace cache).
pub fn fig89_report(quick: bool, jobs: usize) -> FigureReport<Fig89Row> {
    fig89_report_cached(quick, jobs, &TraceCache::disabled())
}

/// Run Figures 8 and 9 across the pool, reusing `cache`.
///
/// Each cell records/replays two traces (baseline + mechanism); a cell is
/// a `hit` only when both configurations replayed from the cache.
pub fn fig89_report_cached(
    quick: bool,
    jobs: usize,
    cache: &TraceCache,
) -> FigureReport<Fig89Row> {
    run_figure("fig8_fig9", selected().collect(), jobs, move |b| {
        fig89_one_cell(b, quick, cache)
    })
}

/// Run Figures 8 and 9 serially (compat wrapper).
pub fn fig89(quick: bool) -> Vec<Fig89Row> {
    fig89_report(quick, 1).expect_rows()
}

/// Run Figures 8/9 for one benchmark, reporting failures as data.
///
/// A checksum divergence between the baseline and mechanism runs is a
/// [`RunError::ChecksumMismatch`] — it flows into the pool's failure
/// summary instead of aborting the suite (the seed used `assert_eq!`
/// here).
///
/// # Errors
///
/// Any [`RunError`] from either configuration, or the checksum mismatch.
pub fn try_fig89_one(b: &Benchmark, quick: bool) -> Result<Fig89Row, RunError> {
    fig89_one_cell(b, quick, &TraceCache::disabled()).map(|(row, _, _, _, _)| row)
}

fn fig89_one_cell(
    b: &Benchmark,
    quick: bool,
    cache: &TraceCache,
) -> Result<(Fig89Row, u64, CacheDisposition, SimTelemetry, VmStats), RunError> {
    let (base, base_disp, base_sim_tel) = try_run_benchmark_cached(
        b,
        RunConfig::baseline_timed()
            .with_scale(cfg_scale(b, quick))
            .with_iterations(iters(quick)),
        cache,
    )?;
    let (full, full_disp, full_sim_tel) = try_run_benchmark_cached(
        b,
        RunConfig::mechanism_timed()
            .with_scale(cfg_scale(b, quick))
            .with_iterations(iters(quick)),
        cache,
    )?;
    let mut sim_tel = base_sim_tel;
    sim_tel.absorb(full_sim_tel);
    let disp = match (base_disp, full_disp) {
        (CacheDisposition::Hit, CacheDisposition::Hit) => CacheDisposition::Hit,
        (CacheDisposition::Off, CacheDisposition::Off) => CacheDisposition::Off,
        _ => CacheDisposition::Miss,
    };
    if base.checksum != full.checksum {
        return Err(RunError::ChecksumMismatch {
            bench: b.name.to_string(),
            base: base.checksum,
            full: full.checksum,
        });
    }
    let bs = base.sim.as_ref().expect("timed");
    let fs = full.sim.as_ref().expect("timed");
    let row = Fig89Row {
        name: b.name.to_string(),
        suite: b.suite.name().to_string(),
        speedup_whole: bs.speedup_pct_over(fs),
        speedup_opt: bs.speedup_opt_pct_over(fs),
        energy_whole: bs.energy_reduction_pct(fs),
        energy_opt: bs.energy_reduction_opt_pct(fs),
        base_uops: base.uops,
        full_uops: full.uops,
        base_cycles: bs.cycles,
        full_cycles: fs.cycles,
        dl1_hit: (bs.dl1.hit_rate(), fs.dl1.hit_rate()),
        l2_hit: (bs.l2.hit_rate(), fs.l2.hit_rate()),
        dtlb_hit: (bs.dtlb.hit_rate(), fs.dtlb.hit_rate()),
        class_cache_hit: full.class_cache.hit_rate(),
    };
    Ok((row, base.uops + full.uops, disp, sim_tel, full.vm_stats))
}

/// Run Figures 8/9 for one benchmark, panicking on failure (compat
/// wrapper used by the smoke tests and `fig8 --detail`).
///
/// # Panics
///
/// On any [`RunError`], including checksum mismatches.
pub fn fig89_one(b: &Benchmark, quick: bool) -> Fig89Row {
    try_fig89_one(b, quick).unwrap_or_else(|e| panic!("{e}"))
}

/// Render Figure 8 (speedup) and Figure 9 (energy).
pub fn render_fig89(rows: &[Fig89Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>11} {:>9} | {:>12} {:>10}",
        "benchmark", "speedup", "(opt)", "energy red.", "(opt)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>10.1}% {:>8.1}% | {:>11.1}% {:>9.1}%",
            r.name, r.speedup_whole, r.speedup_opt, r.energy_whole, r.energy_opt
        );
    }
    for suite in [Suite::Octane, Suite::SunSpider, Suite::Kraken] {
        let sel: Vec<&Fig89Row> = rows.iter().filter(|r| r.suite == suite.name()).collect();
        if sel.is_empty() {
            continue;
        }
        let n = sel.len() as f64;
        let _ = writeln!(
            out,
            "{:<34} {:>10.1}% {:>8.1}% | {:>11.1}% {:>9.1}%",
            format!("{} average", suite.name()),
            sel.iter().map(|r| r.speedup_whole).sum::<f64>() / n,
            sel.iter().map(|r| r.speedup_opt).sum::<f64>() / n,
            sel.iter().map(|r| r.energy_whole).sum::<f64>() / n,
            sel.iter().map(|r| r.energy_opt).sum::<f64>() / n,
        );
    }
    let n = rows.len() as f64;
    if n > 0.0 {
        let _ = writeln!(
            out,
            "{:<34} {:>10.1}% {:>8.1}% | {:>11.1}% {:>9.1}%   (paper: 5% / 7.1% | 4.5% / 6.5%)",
            "overall average",
            rows.iter().map(|r| r.speedup_whole).sum::<f64>() / n,
            rows.iter().map(|r| r.speedup_opt).sum::<f64>() / n,
            rows.iter().map(|r| r.energy_whole).sum::<f64>() / n,
            rows.iter().map(|r| r.energy_opt).sum::<f64>() / n,
        );
    }
    out
}

// ---------------------------------------------------------------------------
// BBV head-to-head: software check elision vs the hardware Class Cache
// ---------------------------------------------------------------------------

/// Column labels of the BBV head-to-head table, in order.
///
/// * `baseline` — plain engine ([`Mechanism::Off`]), optimized tier on.
/// * `opt-noelide` — software profiling, no elision; the reference point
///   the `elided` column is derived from.
/// * `cc-full` — the paper's hardware Class Cache.
/// * `bbv` — pure-software lazy basic-block versioning.
/// * `cc+bbv` — both mechanisms combined.
///
/// [`Mechanism::Off`]: checkelide_engine::Mechanism::Off
pub const BBV_CONFIGS: [&str; 5] = ["baseline", "opt-noelide", "cc-full", "bbv", "cc+bbv"];

/// BBV head-to-head row: one benchmark, five configurations.
///
/// Each metric vector is indexed by [`BBV_CONFIGS`]. `elided` is derived,
/// not measured: check µops the `opt-noelide` run retired that this
/// configuration did not (saturating at zero, so the `baseline` column —
/// which runs *more* checks than the profiled build — reads 0).
#[derive(Debug, Clone)]
pub struct FigBbvRow {
    /// Benchmark name.
    pub name: String,
    /// Suite.
    pub suite: String,
    /// Check-category µops retired, per configuration.
    pub checks: Vec<u64>,
    /// Checks elided relative to `opt-noelide`, per configuration.
    pub elided: Vec<u64>,
    /// Dynamic µops on the measured iteration, per configuration.
    pub uops: Vec<u64>,
    /// Simulated cycles, per configuration.
    pub cycles: Vec<u64>,
}

impl ToJson for FigBbvRow {
    fn to_json(&self) -> Json {
        json_obj!(self, name, suite, checks, elided, uops, cycles)
    }
}

/// Run the BBV head-to-head over the selected benchmarks (no trace cache).
pub fn fig_bbv_report(quick: bool, jobs: usize) -> FigureReport<FigBbvRow> {
    fig_bbv_report_cached(quick, jobs, &TraceCache::disabled())
}

/// Run the BBV head-to-head across the pool, reusing `cache`.
///
/// Each cell records/replays five traces; a cell is a `hit` only when all
/// five configurations replayed from the cache.
pub fn fig_bbv_report_cached(
    quick: bool,
    jobs: usize,
    cache: &TraceCache,
) -> FigureReport<FigBbvRow> {
    run_figure("fig_bbv", selected().collect(), jobs, move |b| {
        fig_bbv_one_cell(b, quick, cache)
    })
}

/// Run the BBV head-to-head serially (compat wrapper).
pub fn fig_bbv(quick: bool) -> Vec<FigBbvRow> {
    fig_bbv_report(quick, 1).expect_rows()
}

/// Run the head-to-head for one benchmark, reporting failures as data.
///
/// # Errors
///
/// Any [`RunError`] from any of the five configurations, or a checksum
/// divergence between any configuration and the baseline run.
pub fn try_fig_bbv_one(b: &Benchmark, quick: bool) -> Result<FigBbvRow, RunError> {
    fig_bbv_one_cell(b, quick, &TraceCache::disabled()).map(|(row, _, _, _, _)| row)
}

fn fig_bbv_one_cell(
    b: &Benchmark,
    quick: bool,
    cache: &TraceCache,
) -> Result<(FigBbvRow, u64, CacheDisposition, SimTelemetry, VmStats), RunError> {
    use checkelide_isa::uop::Category;
    let configs: [RunConfig; 5] = [
        RunConfig::baseline_timed(),
        RunConfig::characterize().with_timing(true),
        RunConfig::mechanism_timed(),
        RunConfig::characterize().with_timing(true).with_bbv(true),
        RunConfig::mechanism_timed().with_bbv(true),
    ];
    let mut checks = Vec::with_capacity(5);
    let mut uops = Vec::with_capacity(5);
    let mut cycles = Vec::with_capacity(5);
    let mut disps = Vec::with_capacity(5);
    let mut checksum: Option<String> = None;
    let mut total_uops = 0u64;
    // Engine telemetry from the `cc-full` configuration (index 2): the
    // BBV configurations pin hot bodies in their versioning tier, so the
    // scalar full-mechanism run is the representative region-tier cell.
    let mut stats = VmStats::default();
    let mut sim_tel = SimTelemetry::default();
    for (i, cfg) in configs.into_iter().enumerate() {
        let (out, disp, run_sim_tel) = try_run_benchmark_cached(
            b,
            cfg.with_scale(cfg_scale(b, quick)).with_iterations(iters(quick)),
            cache,
        )?;
        sim_tel.absorb(run_sim_tel);
        match &checksum {
            Some(base) if *base != out.checksum => {
                return Err(RunError::ChecksumMismatch {
                    bench: b.name.to_string(),
                    base: base.clone(),
                    full: out.checksum,
                });
            }
            Some(_) => {}
            None => checksum = Some(out.checksum.clone()),
        }
        checks.push(out.counters.by_category(Category::Check));
        uops.push(out.uops);
        cycles.push(out.sim.as_ref().expect("timed").cycles);
        total_uops += out.uops;
        disps.push(disp);
        if i == 2 {
            stats = out.vm_stats;
        }
    }
    let disp = if disps.iter().all(|d| *d == CacheDisposition::Hit) {
        CacheDisposition::Hit
    } else if disps.iter().all(|d| *d == CacheDisposition::Off) {
        CacheDisposition::Off
    } else {
        CacheDisposition::Miss
    };
    let noelide = checks[1];
    let elided: Vec<u64> = checks.iter().map(|&c| noelide.saturating_sub(c)).collect();
    let row = FigBbvRow {
        name: b.name.to_string(),
        suite: b.suite.name().to_string(),
        checks,
        elided,
        uops,
        cycles,
    };
    Ok((row, total_uops, disp, sim_tel, stats))
}

/// Render the BBV head-to-head table: per-benchmark checks executed and
/// elided under each configuration, then µop/cycle ratios vs `opt-noelide`,
/// then a software-vs-hardware elision summary (bbv elided as a fraction of
/// cc-full elided).
pub fn render_fig_bbv(rows: &[FigBbvRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "benchmark (checks retired)",
        BBV_CONFIGS[0],
        BBV_CONFIGS[1],
        BBV_CONFIGS[2],
        BBV_CONFIGS[3],
        BBV_CONFIGS[4],
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>12} {:>12} {:>12} {:>12} {:>12}",
            r.name, r.checks[0], r.checks[1], r.checks[2], r.checks[3], r.checks[4],
        );
    }
    let pct = |part: u64, whole: u64| {
        if whole == 0 {
            0.0
        } else {
            100.0 * part as f64 / whole as f64
        }
    };
    let _ = writeln!(
        out,
        "\n{:<34} {:>9} {:>9} {:>9} | {:>9} {:>9}",
        "elided vs opt-noelide (%)", "cc-full", "bbv", "cc+bbv", "uops*", "cycles*"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>8.1}% {:>8.1}% {:>8.1}% | {:>8.3} {:>8.3}",
            r.name,
            pct(r.elided[2], r.checks[1]),
            pct(r.elided[3], r.checks[1]),
            pct(r.elided[4], r.checks[1]),
            r.uops[3] as f64 / r.uops[1].max(1) as f64,
            r.cycles[3] as f64 / r.cycles[1].max(1) as f64,
        );
    }
    let _ = writeln!(out, "  (* bbv run relative to opt-noelide)");
    let cc: u64 = rows.iter().map(|r| r.elided[2]).sum();
    let bbv: u64 = rows.iter().map(|r| r.elided[3]).sum();
    if cc > 0 {
        let _ = writeln!(
            out,
            "{:<34} {:>8.1}%   (software BBV / hardware Class Cache)",
            "bbv elision vs cc-full",
            100.0 * bbv as f64 / cc as f64,
        );
    }
    out
}

// ---------------------------------------------------------------------------
// §5.3 overheads
// ---------------------------------------------------------------------------

/// §5.3 overhead row.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Benchmark name.
    pub name: String,
    /// Hidden classes created (§5.3.1 warm-up ∝ this; paper: ≤32 for all
    /// but box2d/raytrace).
    pub hidden_classes: usize,
    /// Class Cache accesses on the measured iteration.
    pub cc_accesses: u64,
    /// Class Cache hit rate (§5.3.2–5.3.3; paper: >99.9 %).
    pub cc_hit_rate: f64,
    /// Objects allocated.
    pub objects: u64,
    /// Fraction of objects with more than one cache line (§5.3.4).
    pub multi_line_frac: f64,
    /// Memory increase from per-line headers, over multi-line objects'
    /// words (paper: 7–11 %).
    pub mem_increase_pct: f64,
    /// Fraction of property accesses hitting line 0 (paper: 79 %).
    pub line0_frac: f64,
}

impl ToJson for OverheadRow {
    fn to_json(&self) -> Json {
        json_obj!(
            self,
            name,
            hidden_classes,
            cc_accesses,
            cc_hit_rate,
            objects,
            multi_line_frac,
            mem_increase_pct,
            line0_frac
        )
    }
}

/// Run the §5.3 overheads analysis over the selected benchmarks across the
/// pool (no trace cache).
pub fn overheads_report(quick: bool, jobs: usize) -> FigureReport<OverheadRow> {
    overheads_report_cached(quick, jobs, &TraceCache::disabled())
}

/// Run the §5.3 overheads analysis across the pool, reusing `cache`.
///
/// The rows never read the timing model, so the cells run with
/// `with_timing(false)` — the resulting cache key matches Figures 8/9's
/// mechanism configuration (timing is deliberately excluded from the key:
/// `CoreSim` is a pure trace consumer), letting a warm cache serve every
/// cell from the fig8/fig9 recordings.
pub fn overheads_report_cached(
    quick: bool,
    jobs: usize,
    cache: &TraceCache,
) -> FigureReport<OverheadRow> {
    run_figure("overheads", selected().collect(), jobs, move |b| {
        let (out, disp, sim_tel) = try_run_benchmark_cached(
            b,
            RunConfig::mechanism_timed()
                .with_timing(false)
                .with_scale(cfg_scale(b, quick))
                .with_iterations(iters(quick)),
            cache,
        )?;
        let uops = out.uops;
        Ok((overhead_row(b.name, &out), uops, disp, sim_tel, out.vm_stats))
    })
}

/// Run the §5.3 overheads analysis serially (compat wrapper).
pub fn overheads(quick: bool) -> Vec<OverheadRow> {
    overheads_report(quick, 1).expect_rows()
}

fn overhead_row(name: &str, out: &RunOutput) -> OverheadRow {
    let st = &out.obj_stats;
    let line_total = out.vm_stats.line0_accesses + out.vm_stats.linen_accesses;
    OverheadRow {
        name: name.to_string(),
        hidden_classes: out.hidden_classes,
        cc_accesses: out.class_cache.accesses,
        cc_hit_rate: out.class_cache.hit_rate(),
        objects: st.objects,
        multi_line_frac: if st.objects == 0 {
            0.0
        } else {
            st.multi_line_objects as f64 / st.objects as f64
        },
        mem_increase_pct: if st.object_words == 0 {
            0.0
        } else {
            100.0 * st.extra_header_words as f64 / st.object_words as f64
        },
        line0_frac: if line_total == 0 {
            1.0
        } else {
            out.vm_stats.line0_accesses as f64 / line_total as f64
        },
    }
}

/// Render the overheads table.
pub fn render_overheads(rows: &[OverheadRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:>8} {:>12} {:>9} {:>10} {:>9} {:>8}",
        "benchmark", "classes", "cc accesses", "cc hit%", "multiline%", "mem+%", "line0%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>12} {:>8.2}% {:>9.1}% {:>8.1}% {:>7.1}%",
            r.name,
            r.hidden_classes,
            r.cc_accesses,
            100.0 * r.cc_hit_rate,
            100.0 * r.multi_line_frac,
            r.mem_increase_pct,
            100.0 * r.line0_frac,
        );
    }
    out
}

/// Save any serializable result set as JSON under `results/`.
///
/// # Errors
///
/// I/O errors from creating the directory or writing the file.
pub fn save_json<T: ToJson + ?Sized>(name: &str, rows: &T) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let path = format!("results/{name}.json");
    let json = crate::json::to_string_pretty(rows);
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::find;

    #[test]
    fn fig89_one_quick_is_consistent() {
        let b = find("richards").expect("registered");
        let row = fig89_one(b, true);
        assert_eq!(row.name, "richards");
        assert!(row.base_uops > 0 && row.full_uops > 0);
        assert!(row.base_cycles > 0 && row.full_cycles > 0);
        assert!(row.class_cache_hit > 0.9);
    }

    #[test]
    fn renderers_are_total() {
        let rows = vec![Fig1Row {
            name: "x".into(),
            suite: "Octane".into(),
            checks: 5.0,
            tags_untags: 4.0,
            math_assumptions: 1.0,
            other_optimized: 40.0,
            rest_of_code: 50.0,
        }];
        assert!(render_fig1(&rows).contains("Octane average"));
        let rows = vec![Fig2Row {
            name: "x".into(),
            suite: "Kraken".into(),
            whole: 12.0,
            optimized: 20.0,
            selected_by_threshold: true,
        }];
        assert!(render_fig2(&rows).contains("selected average"));
        let failures = vec![CellError {
            label: "fig1/x".into(),
            message: "x: setup failed: boom".into(),
        }];
        let summary = render_failures(&failures);
        assert!(summary.contains("1 cell(s) FAILED"));
        assert!(summary.contains("fig1/x"));
        assert_eq!(render_failures(&[]), "");
    }

    #[test]
    fn cell_meta_serializes_with_stable_fields() {
        let meta = CellMeta {
            figure: "fig1".into(),
            benchmark: "richards".into(),
            worker: 3,
            wall_ms: 12.5,
            uops: 1000,
            uops_per_sec: 80000.0,
            ok: true,
            cache: "off".into(),
            sim_hits: 2,
            sim_misses: 1,
            sim_verify_mismatches: 0,
            regions_compiled: 4,
            tier_up_events: 2,
            code_cache_bytes: 4096,
            evictions: 1,
            deopt_bridges: 3,
            error: None,
        };
        let json = crate::json::to_string_pretty(&meta);
        for key in [
            "figure",
            "benchmark",
            "worker",
            "wall_ms",
            "uops",
            "uops_per_sec",
            "ok",
            "cache",
            "sim_hits",
            "sim_misses",
            "sim_verify_mismatches",
            "regions_compiled",
            "tier_up_events",
            "code_cache_bytes",
            "evictions",
            "deopt_bridges",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
    }
}

//! The benchmark registry: njs kernels modelled on the paper's selected
//! Octane / Kraken / SunSpider benchmarks (see DESIGN.md for the
//! substitution rationale). Each program defines `function bench(scale)`
//! returning a checksum value; top-level code performs one-time setup.

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Octane analogs.
    Octane,
    /// SunSpider analogs.
    SunSpider,
    /// Kraken analogs.
    Kraken,
}

impl Suite {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Octane => "Octane",
            Suite::SunSpider => "SunSpider",
            Suite::Kraken => "Kraken",
        }
    }
}

/// One benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Paper benchmark name.
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// njs source (defines `bench`).
    pub source: &'static str,
    /// Default scale passed to `bench(scale)`.
    pub scale: i32,
    /// Whether the paper selects it for Figures 3/8/9 (> 1 % overhead
    /// from checks after object loads).
    pub selected: bool,
}

macro_rules! bench {
    ($name:literal, $suite:ident, $file:literal, $scale:literal, $selected:literal) => {
        Benchmark {
            name: $name,
            suite: Suite::$suite,
            source: include_str!(concat!("../programs/", $file)),
            scale: $scale,
            selected: $selected,
        }
    };
}

/// All implemented benchmarks, in the paper's figure order.
pub static BENCHMARKS: &[Benchmark] = &[
    // Octane analogs.
    bench!("box2d", Octane, "box2d.js", 24, true),
    bench!("crypto", Octane, "crypto.js", 18, true),
    bench!("deltablue", Octane, "deltablue.js", 28, true),
    bench!("earley-boyer", Octane, "earley_boyer.js", 12, true),
    bench!("gbemu", Octane, "gbemu.js", 26, true),
    bench!("mandreel", Octane, "mandreel.js", 40, true),
    bench!("pdfjs", Octane, "pdfjs.js", 24, true),
    bench!("raytrace", Octane, "raytrace.js", 14, true),
    bench!("richards", Octane, "richards.js", 80, true),
    bench!("navier-stokes", Octane, "navier_stokes.js", 26, false),
    bench!("splay", Octane, "splay.js", 60, false),
    bench!("regexp", Octane, "regexp.js", 24, false),
    bench!("zlib", Octane, "zlib.js", 12, false),
    // SunSpider analogs.
    bench!("3d-cube", SunSpider, "cube3d.js", 24, true),
    bench!("3d-raytrace", SunSpider, "raytrace3d.js", 10, true),
    bench!("access-binary-trees", SunSpider, "binary_trees.js", 8, true),
    bench!("access-fannkuch", SunSpider, "fannkuch.js", 7, true),
    bench!("access-nbody", SunSpider, "nbody.js", 160, true),
    bench!("crypto-aes", SunSpider, "aes.js", 10, true),
    bench!("date-format-tofte", SunSpider, "date_format.js", 120, true),
    bench!("math-spectral-norm", SunSpider, "spectral_norm.js", 8, true),
    bench!("string-unpack-code", SunSpider, "unpack_code.js", 16, true),
    bench!("bitops-bits-in-byte", SunSpider, "bits_in_byte.js", 60, false),
    bench!("math-cordic", SunSpider, "cordic.js", 120, false),
    bench!("string-base64", SunSpider, "base64.js", 20, false),
    // Kraken analogs.
    bench!("ai-astar", Kraken, "astar.js", 3, true),
    bench!("audio-beat-detection", Kraken, "beat_detection.js", 16, true),
    bench!("audio-oscillator", Kraken, "oscillator.js", 18, true),
    bench!("imaging-gaussian-blur", Kraken, "gaussian_blur.js", 14, true),
    bench!("stanford-crypto-aes", Kraken, "stanford_aes.js", 9, true),
    bench!("stanford-crypto-ccm", Kraken, "stanford_ccm.js", 7, true),
    bench!("stanford-crypto-pbkdf2", Kraken, "pbkdf2.js", 5, true),
    bench!("stanford-crypto-sha256-iterative", Kraken, "sha256.js", 16, true),
];

/// Look up a benchmark by name.
pub fn find(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

/// The paper's selected subset (Figures 3, 8 and 9).
pub fn selected() -> impl Iterator<Item = &'static Benchmark> {
    BENCHMARKS.iter().filter(|b| b.selected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_shape() {
        assert!(BENCHMARKS.len() >= 30);
        assert_eq!(selected().count(), 26, "paper's Fig. 8 selects 26 benchmarks");
        assert!(find("ai-astar").is_some());
        assert!(find("nope").is_none());
        // Names are unique.
        let mut names: Vec<_> = BENCHMARKS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BENCHMARKS.len());
    }

    #[test]
    fn sources_define_bench() {
        for b in BENCHMARKS {
            assert!(
                b.source.contains("function bench("),
                "{} must define bench(scale)",
                b.name
            );
            assert!(b.scale > 0);
        }
    }
}

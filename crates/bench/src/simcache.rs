//! Sim-result cache policy: the single source of truth for the harness's
//! core configuration and its content-addressed memoization key.
//!
//! Every figure in the paper is simulated on one fixed core (Table 2,
//! [`CoreConfig::nehalem`]) with the default [`EnergyParams`]. The trace
//! store gives each recording a SHA-256 content ID; [`CoreSim`] is a pure
//! function of `(trace bytes, core config)` — so its result can be
//! memoized under `(trace CID, config fingerprint, SIM_SCHEMA_REV)` and
//! reused forever, exactly the paper's memoization idiom (pay the
//! expensive observation once, reuse the proven result while the key
//! holds) applied to the simulation layer itself.
//!
//! [`sim_config`] / [`sim_energy`] replace the formerly scattered
//! `CoreConfig::nehalem()` call sites in `runner`, `perfstat`, and the
//! criterion benches: every simulation the harness runs goes through this
//! pair, so the fingerprint provably describes the config that produced
//! every cached result.
//!
//! # Modes
//!
//! * `on` (default) — a sim hit skips trace-body decode and `CoreSim`
//!   entirely; a miss simulates live and publishes the result.
//! * `verify` — a hit *also* re-simulates and asserts the memoized result
//!   is bit-identical (CI's differential mode); mismatches are counted
//!   and the live result wins.
//! * `off` — always simulate live, never read or write sim objects.
//!
//! Resolution order: the `--sim-cache` flag, then [`SIM_CACHE_ENV`], then
//! `on`. The cache is backend-agnostic: sim objects live next to trace
//! manifests in the local store and travel over the `tracestored`
//! protocol, degrading tcp → local → live-simulate.
//!
//! [`CoreSim`]: checkelide_uarch::CoreSim

use std::sync::OnceLock;

use checkelide_uarch::{config_fingerprint, CoreConfig, EnergyParams};

/// Environment variable selecting the sim-cache mode (`off`/`on`/
/// `verify`).
pub const SIM_CACHE_ENV: &str = "CHECKELIDE_SIM_CACHE";

/// Sim-result cache mode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SimCacheMode {
    /// Never read or write sim objects.
    Off,
    /// Serve hits, publish misses (the default).
    #[default]
    On,
    /// Serve hits but re-simulate each one and assert bit-identity.
    Verify,
}

impl SimCacheMode {
    /// Stable label (`off` / `on` / `verify`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SimCacheMode::Off => "off",
            SimCacheMode::On => "on",
            SimCacheMode::Verify => "verify",
        }
    }

    /// Parse a mode spelling. `None` for anything unrecognized.
    #[must_use]
    pub fn parse(spec: &str) -> Option<SimCacheMode> {
        match spec {
            "off" | "0" | "none" => Some(SimCacheMode::Off),
            "on" | "1" | "" => Some(SimCacheMode::On),
            "verify" => Some(SimCacheMode::Verify),
            _ => None,
        }
    }

    /// Resolve from an explicit `--sim-cache` value, the
    /// [`SIM_CACHE_ENV`] variable, or the default (`on`). Unrecognized
    /// spellings warn and fall back to the default so a typo can never
    /// silently disable verification CI asked for.
    #[must_use]
    pub fn resolve(flag: Option<&str>) -> SimCacheMode {
        let spec = flag.map(str::to_string).or_else(|| std::env::var(SIM_CACHE_ENV).ok());
        match spec.as_deref() {
            None => SimCacheMode::default(),
            Some(s) => SimCacheMode::parse(s).unwrap_or_else(|| {
                eprintln!(
                    "warning: unknown sim-cache mode {s:?}; using {}",
                    SimCacheMode::default().label()
                );
                SimCacheMode::default()
            }),
        }
    }
}

/// The one core configuration every harness simulation uses (the paper's
/// Table 2 core). All `CoreSim` construction in the harness must go
/// through this so [`sim_fingerprint`] describes every simulation.
#[must_use]
pub fn sim_config() -> CoreConfig {
    CoreConfig::nehalem()
}

/// The energy model matching [`sim_config`] (what `CoreSim::new`
/// installs).
#[must_use]
pub fn sim_energy() -> EnergyParams {
    EnergyParams::default()
}

/// Fingerprint of `(sim_config, sim_energy)` — the config half of every
/// sim-object key. Computed once per process.
#[must_use]
pub fn sim_fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| config_fingerprint(&sim_config(), &sim_energy()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_spellings_parse() {
        assert_eq!(SimCacheMode::parse("off"), Some(SimCacheMode::Off));
        assert_eq!(SimCacheMode::parse("0"), Some(SimCacheMode::Off));
        assert_eq!(SimCacheMode::parse("none"), Some(SimCacheMode::Off));
        assert_eq!(SimCacheMode::parse("on"), Some(SimCacheMode::On));
        assert_eq!(SimCacheMode::parse("1"), Some(SimCacheMode::On));
        assert_eq!(SimCacheMode::parse("verify"), Some(SimCacheMode::Verify));
        assert_eq!(SimCacheMode::parse("bogus"), None);
        assert_eq!(SimCacheMode::resolve(Some("verify")), SimCacheMode::Verify);
        assert_eq!(SimCacheMode::resolve(Some("bogus")), SimCacheMode::On);
    }

    #[test]
    fn fingerprint_is_stable_within_a_process() {
        assert_eq!(sim_fingerprint(), sim_fingerprint());
        assert_eq!(
            sim_fingerprint(),
            config_fingerprint(&sim_config(), &sim_energy())
        );
    }
}

// crypto-aes analog (SunSpider): byte-table substitution/permutation
// network; the cipher state object holds its state/key arrays as
// properties, as in the original's AES object.
var SBOX = [];
(function() {
    var p = 5;
    for (var i = 0; i < 256; i++) {
        SBOX[i] = (p ^ (p >> 3) ^ (p << 2)) & 255;
        p = (p * 11 + 13) & 255;
    }
})();

function Cipher() {
    this.state = [];
    this.key = [];
    this.rounds = 10;
    for (var i = 0; i < 16; i++) {
        this.state[i] = i * 7 & 255;
        this.key[i] = i * 29 & 255;
    }
}

function cipherRound(c, round) {
    var state = c.state;
    var key = c.key;
    for (var i = 0; i < 16; i++) state[i] = SBOX[(state[i] ^ key[(round + i) & 15]) & 255];
    var t = state[1];
    state[1] = state[5]; state[5] = state[9]; state[9] = state[13]; state[13] = t;
    for (var col = 0; col < 4; col++) {
        var a = state[col * 4], b = state[col * 4 + 1];
        state[col * 4] = (a ^ (b << 1) ^ (b >> 7)) & 255;
        state[col * 4 + 1] = (b ^ (a << 1) ^ (a >> 7)) & 255;
    }
}

function encrypt(c) {
    for (var round = 0; round < c.rounds; round++) cipherRound(c, round);
    return c.state[0] + c.state[15];
}

function bench(scale) {
    var c = new Cipher();
    var acc = 0;
    for (var r = 0; r < scale * 120; r++) acc = (acc + encrypt(c)) & 0xffffff;
    return acc;
}

// 3d-cube analog (SunSpider): rotate a wireframe cube; Vertex objects
// with double properties, matrix in a wrapper object.
function Vertex(x, y, z) { this.vx = x; this.vy = y; this.vz = z; }
function Matrix() { this.n = 9; }
function Mesh() { this.count = 0; }

function makeCube() {
    var m = new Mesh();
    var i = 0;
    for (var x = -1; x <= 1; x += 2)
        for (var y = -1; y <= 1; y += 2)
            for (var z = -1; z <= 1; z += 2)
                m[i++] = new Vertex(x * 1.0, y * 1.0, z * 1.0);
    m.count = i;
    return m;
}

function rotMatrix(ax, ay, az) {
    var m = new Matrix();
    var ca = Math.cos(ax), sa = Math.sin(ax);
    var cb = Math.cos(ay), sb = Math.sin(ay);
    var cc = Math.cos(az), sc = Math.sin(az);
    m[0] = cb * cc; m[1] = -cb * sc; m[2] = sb;
    m[3] = sa * sb * cc + ca * sc; m[4] = -sa * sb * sc + ca * cc; m[5] = -sa * cb;
    m[6] = -ca * sb * cc + sa * sc; m[7] = ca * sb * sc + sa * cc; m[8] = ca * cb;
    return m;
}

function apply(mesh, m) {
    for (var i = 0; i < mesh.count; i++) {
        var v = mesh[i];
        var x = v.vx, y = v.vy, z = v.vz;
        v.vx = m[0] * x + m[1] * y + m[2] * z;
        v.vy = m[3] * x + m[4] * y + m[5] * z;
        v.vz = m[6] * x + m[7] * y + m[8] * z;
    }
}

function project(mesh) {
    var acc = 0.0;
    for (var i = 0; i < mesh.count; i++) {
        var v = mesh[i];
        var d = 4.0 / (4.0 + v.vz);
        acc += v.vx * d + v.vy * d;
    }
    return acc;
}

function bench(scale) {
    var mesh = makeCube();
    var acc = 0.0;
    for (var r = 0; r < scale * 25; r++) {
        var m = rotMatrix(0.01 * r, 0.017 * r, 0.023 * r);
        apply(mesh, m);
        acc += project(mesh);
    }
    return Math.floor(acc * 1e3);
}

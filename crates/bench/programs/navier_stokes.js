// navier-stokes analog (Octane): fluid solver steps over flat double
// grids — array-heavy with near-zero check-after-load overhead.
function Field(n) { this.n = n; }

function linSolve(x, x0, n, a, c) {
    var invC = 1.0 / c;
    for (var k = 0; k < 4; k++) {
        for (var j = 1; j < n - 1; j++) {
            for (var i = 1; i < n - 1; i++) {
                var ix = j * n + i;
                x[ix] = (x0[ix] + a * (x[ix - 1] + x[ix + 1] + x[ix - n] + x[ix + n])) * invC;
            }
        }
    }
}

function advect(d, d0, u, n, dt) {
    for (var j = 1; j < n - 1; j++) {
        for (var i = 1; i < n - 1; i++) {
            var ix = j * n + i;
            var src = i - dt * u[ix];
            if (src < 0.5) src = 0.5;
            if (src > n - 1.5) src = n - 1.5;
            var i0 = Math.floor(src);
            var frac = src - i0;
            d[ix] = d0[j * n + i0] * (1.0 - frac) + d0[j * n + i0 + 1] * frac;
        }
    }
}

function bench(scale) {
    var n = 16;
    var x = new Field(n * n);
    var x0 = new Field(n * n);
    var u = new Field(n * n);
    for (var i = 0; i < n * n; i++) {
        x[i] = 0.0;
        x0[i] = ((i * 31) % 97) / 97.0;
        u[i] = ((i * 17) % 13 - 6) / 6.0;
    }
    var acc = 0.0;
    for (var r = 0; r < scale * 4; r++) {
        linSolve(x, x0, n, 0.2, 1.8);
        advect(x0, x, u, n, 0.1);
        acc += x0[n * 8 + 8];
    }
    return Math.floor(acc * 1e6);
}

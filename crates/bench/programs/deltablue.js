// deltablue analog (Octane): one-way constraint propagation; Variable
// and Constraint objects with method-valued properties.
function Variable(value) {
    this.value = value;
    this.stay = 1;
    this.determinedBy = NIL_C;
}
function Constraint(a, b, offset) {
    this.a = a;
    this.b = b;
    this.offset = offset;
    this.satisfied = 0;
}
var NIL_V = new Variable(0);
var NIL_C = new Constraint(NIL_V, NIL_V, 0);
NIL_V.determinedBy = NIL_C;

function ConstraintList() { this.n = 0; }
function VariableList() { this.n = 0; }

function satisfy(c) {
    // b = a + offset
    c.b.value = c.a.value + c.offset;
    c.b.determinedBy = c;
    c.b.stay = c.a.stay;
    c.satisfied = 1;
}

function propagate(constraints, times) {
    for (var t = 0; t < times; t++) {
        for (var i = 0; i < constraints.n; i++) satisfy(constraints[i]);
    }
}

function chainTest(n, times) {
    var vars = new VariableList();
    for (var i = 0; i <= n; i++) vars[i] = new Variable(i);
    vars.n = n + 1;
    var cs = new ConstraintList();
    for (var i = 0; i < n; i++) cs[i] = new Constraint(vars[i], vars[i + 1], 1);
    cs.n = n;
    vars[0].value = 17;
    propagate(cs, times);
    return vars[n].value;
}

function projectionTest(n, times) {
    var src = new VariableList();
    var dst = new VariableList();
    var cs = new ConstraintList();
    for (var i = 0; i < n; i++) {
        src[i] = new Variable(i);
        dst[i] = new Variable(0);
        cs[i] = new Constraint(src[i], dst[i], i * 2);
    }
    src.n = n; dst.n = n; cs.n = n;
    var acc = 0;
    for (var t = 0; t < times; t++) {
        propagate(cs, 1);
        acc += dst[n - 1].value;
    }
    return acc;
}

function bench(scale) {
    var a = chainTest(30, scale * 4);
    var b = projectionTest(20, scale * 4);
    return a * 1000 + (b & 0xffff);
}

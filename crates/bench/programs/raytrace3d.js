// 3d-raytrace analog (SunSpider): sphere intersection with vector
// objects; double-heavy property traffic.
function Vec(x, y, z) { this.x = x; this.y = y; this.z = z; }
function Sphere(center, radius, color) {
    this.center = center;
    this.radius = radius;
    this.color = color;
}
function Scene() { this.count = 0; }

function dot(a, b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
function sub(a, b) { return new Vec(a.x - b.x, a.y - b.y, a.z - b.z); }

function intersect(sphere, orig, dir) {
    var oc = sub(orig, sphere.center);
    var b = 2.0 * dot(oc, dir);
    var c = dot(oc, oc) - sphere.radius * sphere.radius;
    var disc = b * b - 4.0 * c;
    if (disc < 0.0) return -1.0;
    var t = (-b - Math.sqrt(disc)) * 0.5;
    return t;
}

function trace(scene, orig, dir) {
    var best = 1e30;
    var hit = scene[0];
    var found = 0;
    for (var i = 0; i < scene.count; i++) {
        var s = scene[i];
        var t = intersect(s, orig, dir);
        if (t > 0.0 && t < best) { best = t; hit = s; found = 1; }
    }
    if (!found) return 0.0;
    return hit.color * (1.0 / (1.0 + best));
}

function bench(scale) {
    var scene = new Scene();
    for (var i = 0; i < 6; i++) {
        scene[i] = new Sphere(new Vec(i - 3.0, (i % 3) - 1.0, 5.0 + i), 0.8, 0.1 * (i + 1));
        scene.count = i + 1;
    }
    var orig = new Vec(0.0, 0.0, 0.0);
    var acc = 0.0;
    var size = 12 + scale;
    for (var py = 0; py < size; py++) {
        for (var px = 0; px < size * 4; px++) {
            var dir = new Vec((px - size * 2) / (size * 2.0), (py - size / 2) / size, 1.0);
            var norm = 1.0 / Math.sqrt(dot(dir, dir));
            dir.x = dir.x * norm; dir.y = dir.y * norm; dir.z = dir.z * norm;
            acc += trace(scene, orig, dir);
        }
    }
    return Math.floor(acc * 1e4);
}

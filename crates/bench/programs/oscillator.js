// audio-oscillator analog (Kraken): additive synthesis into a sample
// buffer object; mixes double elements arrays with envelope objects.
function Envelope(attack, decay) {
    this.attack = attack;
    this.decay = decay;
    this.level = 0.0;
}
function Oscillator(freq, gain) {
    this.freq = freq;
    this.gain = gain;
    this.phase = 0.0;
}
function SampleBuffer(n) { this.length2 = n; }

function generate(oscs, env, buf, n) {
    for (var i = 0; i < n; i++) buf[i] = 0.0;
    for (var o = 0; o < oscs.length; o++) {
        var osc = oscs[o];
        var ph = osc.phase;
        var step = osc.freq * 0.0012;
        var gain = osc.gain;
        for (var i = 0; i < n; i++) {
            buf[i] = buf[i] + Math.sin(ph) * gain;
            ph = ph + step;
        }
        osc.phase = ph;
    }
    // envelope
    var level = env.level;
    for (var i = 0; i < n; i++) {
        level = level * env.decay + env.attack;
        buf[i] = buf[i] * level;
    }
    env.level = level;
    var acc = 0.0;
    for (var i = 0; i < n; i++) acc += buf[i] * buf[i];
    return acc;
}

var oscillators = [];
for (var i = 0; i < 4; i++) oscillators.push(new Oscillator(110.0 * (i + 1), 0.25 / (i + 1)));

function bench(scale) {
    var env = new Envelope(0.004, 0.995);
    var buf = new SampleBuffer(512);
    for (var i = 0; i < 4; i++) oscillators[i].phase = 0.0;
    var acc = 0.0;
    for (var r = 0; r < scale; r++) acc += generate(oscillators, env, buf, 512);
    return Math.floor(acc * 1e6);
}

// box2d analog (Octane): rigid-body step with many small vector/body/
// contact classes (box2d is one of the two paper benchmarks exceeding 32
// hidden classes; we create a widened class population).
function B2Vec(x, y) { this.x = x; this.y = y; }
function B2Body(px, py, vx, vy, mass) {
    this.pos = new B2Vec(px, py);
    this.vel = new B2Vec(vx, vy);
    this.force = new B2Vec(0.0, 0.0);
    this.invMass = 1.0 / mass;
    this.angle = 0.0;
    this.omega = 0.0;
}
function B2Contact(a, b) { this.a = a; this.b = b; this.depth = 0.0; }
function B2World() { this.nBodies = 0; this.gravity = new B2Vec(0.0, -10.0); }
function ContactList() { this.n = 0; }

// Widen the class population like real box2d (fixtures, shapes, joints…).
function Shape0(r) { this.r = r; } function Shape1(r) { this.r = r; }
function Shape2(r) { this.r = r; } function Shape3(r) { this.r = r; }
function Shape4(r) { this.r = r; } function Shape5(r) { this.r = r; }
function Shape6(r) { this.r = r; } function Shape7(r) { this.r = r; }

function attachShape(body, i) {
    if (i % 8 == 0) body.shape = new Shape0(0.5);
    else if (i % 8 == 1) body.shape = new Shape1(0.5);
    else if (i % 8 == 2) body.shape = new Shape2(0.5);
    else if (i % 8 == 3) body.shape = new Shape3(0.5);
    else if (i % 8 == 4) body.shape = new Shape4(0.5);
    else if (i % 8 == 5) body.shape = new Shape5(0.5);
    else if (i % 8 == 6) body.shape = new Shape6(0.5);
    else body.shape = new Shape7(0.5);
}

function integrate(world, dt) {
    for (var i = 0; i < world.nBodies; i++) {
        var b = world[i];
        b.vel.x = b.vel.x + (world.gravity.x + b.force.x * b.invMass) * dt;
        b.vel.y = b.vel.y + (world.gravity.y + b.force.y * b.invMass) * dt;
        b.pos.x = b.pos.x + b.vel.x * dt;
        b.pos.y = b.pos.y + b.vel.y * dt;
        b.angle = b.angle + b.omega * dt;
        if (b.pos.y < 0.0) { b.pos.y = 0.0; b.vel.y = -b.vel.y * 0.5; }
    }
}

function findContacts(world, contacts) {
    var n = 0;
    for (var i = 0; i < world.nBodies; i++) {
        for (var j = i + 1; j < world.nBodies; j++) {
            var a = world[i];
            var b = world[j];
            var dx = a.pos.x - b.pos.x;
            var dy = a.pos.y - b.pos.y;
            var d2 = dx * dx + dy * dy;
            if (d2 < 1.0) {
                var c = new B2Contact(a, b);
                c.depth = 1.0 - Math.sqrt(d2);
                contacts[n] = c;
                n++;
            }
        }
    }
    contacts.n = n;
}

function solve(contacts) {
    for (var i = 0; i < contacts.n; i++) {
        var c = contacts[i];
        var push = c.depth * 0.5;
        c.a.vel.x = c.a.vel.x + push;
        c.b.vel.x = c.b.vel.x - push;
        c.a.vel.y = c.a.vel.y + push * 0.3;
        c.b.vel.y = c.b.vel.y - push * 0.3;
    }
}

function bench(scale) {
    var world = new B2World();
    for (var i = 0; i < 12; i++) {
        world[i] = new B2Body((i % 4) * 0.8, 2.0 + i * 0.5, 0.1 * i, 0.0, 1.0 + i * 0.1);
        attachShape(world[i], i);
    }
    world.nBodies = 12;
    var contacts = new ContactList();
    var acc = 0.0;
    for (var step = 0; step < scale * 6; step++) {
        integrate(world, 0.016);
        findContacts(world, contacts);
        solve(contacts);
        acc += world[0].pos.y + world[5].vel.x;
    }
    return Math.floor(acc * 1e3);
}

// ai-astar analog (Kraken). The paper's headline benchmark (~34% speedup):
// a grid search whose hot loop performs many monomorphic property loads
// (g/h/f/visited/closed/parent) and elements loads of GraphNode objects.
// Container classes (Grid, NodeList) mirror the paper's Table 1 shapes.
var COLS = 48;
var ROWS = 48;

function GraphNode(x, y, wall) {
    this.x = x;
    this.y = y;
    this.wall = wall;
    this.g = 0;
    this.h = 0;
    this.f = 0;
    this.visited = 0;
    this.closed = 0;
    this.parent = this;
}

function Grid() { this.cols = COLS; this.rows = ROWS; }
function NodeList() { this.count = 0; }

function buildGrid() {
    var g = new Grid();
    for (var y = 0; y < ROWS; y++) {
        for (var x = 0; x < COLS; x++) {
            var wall = ((x * 7 + y * 13) % 9) == 0 && x != 0 && y != 0;
            g[y * COLS + x] = new GraphNode(x, y, wall ? 1 : 0);
        }
    }
    return g;
}

function heuristic(a, b) {
    return Math.abs(a.x - b.x) + Math.abs(a.y - b.y);
}

function search(grid) {
    var start = grid[0];
    var end = grid[ROWS * COLS - 1];
    var open = new NodeList();
    open[0] = start;
    open.count = 1;
    start.visited = 1;
    var steps = 0;
    while (open.count > 0) {
        var lowInd = 0;
        for (var i = 1; i < open.count; i++) {
            if (open[i].f < open[lowInd].f) lowInd = i;
        }
        var cur = open[lowInd];
        steps++;
        if (cur.x == end.x && cur.y == end.y) {
            var len = 0;
            var n = cur;
            while (n.parent != n) { len++; n = n.parent; }
            return len * 1000 + steps;
        }
        open[lowInd] = open[open.count - 1];
        open.count = open.count - 1;
        cur.closed = 1;
        for (var d = 0; d < 4; d++) {
            var nx = cur.x + (d == 0 ? 1 : (d == 1 ? -1 : 0));
            var ny = cur.y + (d == 2 ? 1 : (d == 3 ? -1 : 0));
            if (nx < 0 || ny < 0 || nx >= COLS || ny >= ROWS) continue;
            var nb = grid[ny * COLS + nx];
            if (nb.closed || nb.wall) continue;
            var gs = cur.g + 1;
            if (!nb.visited || gs < nb.g) {
                if (!nb.visited) {
                    open[open.count] = nb;
                    open.count = open.count + 1;
                    nb.visited = 1;
                }
                nb.g = gs;
                nb.h = heuristic(nb, end);
                nb.f = gs + nb.h;
                nb.parent = cur;
            }
        }
    }
    return steps;
}

function bench(scale) {
    var sum = 0;
    for (var r = 0; r < scale; r++) {
        var grid = buildGrid();
        sum += search(grid);
    }
    return sum;
}

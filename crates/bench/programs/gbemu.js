// gbemu analog (Octane): CPU-emulator main loop — opcode dispatch over a
// SMI memory array with a register-file object.
function Cpu() {
    this.a = 0; this.b = 0; this.c = 0; this.d = 0;
    this.pc = 0; this.sp = 0xfff0; this.cycles = 0; this.flags = 0;
}
function Memory() { this.size = 4096; }

function step(cpu, mem) {
    var op = mem[cpu.pc & 4095];
    cpu.pc = (cpu.pc + 1) & 4095;
    var kind = op & 15;
    if (kind == 0) { cpu.a = (cpu.a + 1) & 255; }
    else if (kind == 1) { cpu.a = (cpu.a + cpu.b) & 255; cpu.flags = cpu.a == 0 ? 1 : 0; }
    else if (kind == 2) { cpu.b = mem[(cpu.pc + cpu.c) & 4095] & 255; }
    else if (kind == 3) { mem[(cpu.sp - 1) & 4095] = cpu.a; cpu.sp = (cpu.sp - 1) & 4095; }
    else if (kind == 4) { cpu.a = mem[cpu.sp & 4095] & 255; cpu.sp = (cpu.sp + 1) & 4095; }
    else if (kind == 5) { cpu.c = (cpu.c ^ cpu.a) & 255; }
    else if (kind == 6) { cpu.d = (cpu.d + cpu.c) & 255; }
    else if (kind == 7) { if (cpu.flags) cpu.pc = (cpu.pc + (op >> 4)) & 4095; }
    else if (kind == 8) { cpu.a = (cpu.a << 1) & 255; }
    else if (kind == 9) { cpu.a = (cpu.a >> 1) & 255; }
    else if (kind == 10) { cpu.b = (cpu.b + 3) & 255; }
    else if (kind == 11) { var t = cpu.a; cpu.a = cpu.b & 255; cpu.b = t & 255; }
    else if (kind == 12) { cpu.flags = (cpu.a > cpu.b) ? 1 : 0; }
    else if (kind == 13) { mem[cpu.d & 4095] = (cpu.a + cpu.c) & 255; }
    else if (kind == 14) { cpu.a = (cpu.a | cpu.c) & 255; }
    else { cpu.a = (cpu.a & cpu.d) & 255; }
    cpu.cycles = cpu.cycles + 1;
}

function bench(scale) {
    var mem = new Memory();
    for (var i = 0; i < 4096; i++) mem[i] = (i * 197 + 31) & 255;
    var cpu = new Cpu();
    var steps = scale * 800;
    for (var i = 0; i < steps; i++) step(cpu, mem);
    return cpu.a * 65536 + cpu.b * 256 + (cpu.cycles & 255);
}

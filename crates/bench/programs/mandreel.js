// mandreel analog (Octane): compiled-C++-style kernel — flat double
// buffers with computed indices (asm.js-ish), low object traffic.
function Buffer(n) { this.n = n; }

function physicsKernel(pos, vel, n, dt) {
    for (var i = 0; i < n; i++) {
        var p = pos[i];
        var v = vel[i];
        v = v + (-9.8) * dt - v * 0.01;
        p = p + v * dt;
        if (p < 0.0) { p = -p; v = -v * 0.7; }
        pos[i] = p;
        vel[i] = v;
    }
}

function sumKernel(buf, n) {
    var s = 0.0;
    for (var i = 0; i < n; i++) s += buf[i];
    return s;
}

function bench(scale) {
    var n = 256;
    var pos = new Buffer(n);
    var vel = new Buffer(n);
    for (var i = 0; i < n; i++) { pos[i] = 1.0 + (i % 17) * 0.1; vel[i] = 0.0; }
    var acc = 0.0;
    for (var step = 0; step < scale * 6; step++) {
        physicsKernel(pos, vel, n, 0.016);
        acc += sumKernel(pos, n);
    }
    return Math.floor(acc * 100);
}

// zlib analog (Octane): LZ-style window compression over SMI byte
// arrays; hash-chain matching.
function Window() { this.size = 1024; }
function HashHeads() { this.n = 256; }

function compress(data, n, heads, out) {
    for (var i = 0; i < 256; i++) heads[i] = -1;
    var outN = 0;
    var i = 0;
    while (i < n) {
        var h = (data[i] * 33 + (i + 1 < n ? data[i + 1] : 0)) & 255;
        var cand = heads[h];
        heads[h] = i;
        var matchLen = 0;
        if (cand >= 0 && i - cand < 255) {
            while (matchLen < 15 && i + matchLen < n &&
                   data[cand + matchLen] == data[i + matchLen]) {
                matchLen++;
            }
        }
        if (matchLen >= 3) {
            out[outN] = 256 + (matchLen << 8) + (i - cand);
            outN++;
            i += matchLen;
        } else {
            out[outN] = data[i];
            outN++;
            i++;
        }
    }
    return outN;
}

function bench(scale) {
    var data = new Window();
    var n = 1024;
    for (var i = 0; i < n; i++) {
        data[i] = ((i * 7) ^ (i >> 3)) & 63;  // repetitive source
    }
    var heads = new HashHeads();
    var out = new Window();
    var acc = 0;
    for (var r = 0; r < scale * 3; r++) {
        var m = compress(data, n, heads, out);
        acc = (acc + m + out[m - 1]) & 0xffffff;
    }
    return acc;
}

// audio-beat-detection analog (Kraken): energy envelope over sample
// frames; Frame objects hold double properties, history in a ring.
function Frame(energy, flux) { this.energy = energy; this.flux = flux; }
function Ring(n) { this.size = n; this.pos = 0; }
function Detector() { this.threshold = 1.3; this.beats = 0; this.last = 0.0; }

function pushFrame(ring, f) {
    ring[ring.pos] = f;
    ring.pos = (ring.pos + 1) % ring.size;
}

function averageEnergy(ring) {
    var sum = 0.0;
    for (var i = 0; i < ring.size; i++) sum += ring[i].energy;
    return sum / ring.size;
}

function detect(det, ring, samples, n) {
    var beats = 0;
    for (var i = 0; i + 16 <= n; i += 16) {
        var e = 0.0;
        for (var j = 0; j < 16; j++) {
            var s = samples[i + j];
            e += s * s;
        }
        var flux = e - det.last;
        det.last = e;
        pushFrame(ring, new Frame(e, flux));
        var avg = averageEnergy(ring);
        if (e > avg * det.threshold) beats++;
    }
    det.beats += beats;
    return beats;
}

function Samples() { this.rate = 44100; }

function bench(scale) {
    var n = 512;
    var samples = new Samples();
    for (var i = 0; i < n; i++)
        samples[i] = Math.sin(i * 0.21) * 0.7 + Math.sin(i * 0.04) * 0.3;
    var ring = new Ring(43);
    for (var i = 0; i < 43; i++) ring[i] = new Frame(0.0, 0.0);
    var det = new Detector();
    var total = 0;
    for (var r = 0; r < scale; r++) total += detect(det, ring, samples, n);
    return total;
}

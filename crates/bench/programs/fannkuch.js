// access-fannkuch analog (SunSpider): permutation flipping. State lives
// in a Fannkuch object holding SMI arrays; the flip kernel is a hot
// helper performing property + element accesses.
function Fannkuch(n) {
    this.n = n;
    this.perm = [];
    this.perm1 = [];
    this.count = [];
    this.maxFlips = 0;
    this.checksum = 0;
    this.permCount = 0;
    for (var i = 0; i < n; i++) {
        this.perm1[i] = i;
        this.perm[i] = 0;
        this.count[i] = 0;
    }
}

function countFlips(st) {
    var perm = st.perm;
    var perm1 = st.perm1;
    var n = st.n;
    for (var i = 0; i < n; i++) perm[i] = perm1[i];
    var flips = 0;
    var k = perm[0];
    while (k != 0) {
        var half = (k + 1) >> 1;
        for (var j = 0; j < half; j++) {
            var t = perm[j];
            perm[j] = perm[k - j];
            perm[k - j] = t;
        }
        flips++;
        k = perm[0];
    }
    return flips;
}

function nextPermutation(st, r) {
    var perm1 = st.perm1;
    var count = st.count;
    var n = st.n;
    while (r != n) {
        var p0 = perm1[0];
        for (var i = 0; i < r; i++) perm1[i] = perm1[i + 1];
        perm1[r] = p0;
        count[r] = count[r] - 1;
        if (count[r] > 0) return r;
        r++;
    }
    // Wrapped: restart the permutation space.
    for (var i = 0; i < n; i++) perm1[i] = i;
    return n - 1;
}

function step(st, r) {
    var count = st.count;
    while (r != 1) {
        count[r - 1] = r;
        r--;
    }
    var flips = countFlips(st);
    if (flips > st.maxFlips) st.maxFlips = flips;
    st.checksum += (st.permCount % 2 == 0) ? flips : -flips;
    st.permCount = st.permCount + 1;
    return nextPermutation(st, 1);
}

function bench(scale) {
    var st = new Fannkuch(7);
    var r = st.n;
    var limit = scale * 600;
    while (st.permCount < limit) r = step(st, r);
    return st.maxFlips * 100000 + (st.checksum & 0xffff);
}

// date-format-tofte analog (SunSpider): string assembly from numeric
// fields; string concatenation and charCode traffic.
function Date2(y, mo, d, h, mi, s) {
    this.year = y; this.month = mo; this.day = d;
    this.hour = h; this.minute = mi; this.second = s;
}

var MONTHS = ['Jan', 'Feb', 'Mar', 'Apr', 'May', 'Jun',
              'Jul', 'Aug', 'Sep', 'Oct', 'Nov', 'Dec'];

function pad(n) {
    if (n < 10) return '0' + n;
    return '' + n;
}

function formatDate(d) {
    return MONTHS[d.month] + ' ' + pad(d.day) + ' ' + d.year + ' ' +
           pad(d.hour) + ':' + pad(d.minute) + ':' + pad(d.second);
}

function checksumString(s) {
    var h = 0;
    for (var i = 0; i < s.length; i++) h = (h * 31 + s.charCodeAt(i)) & 0xffffff;
    return h;
}

function bench(scale) {
    var acc = 0;
    for (var i = 0; i < scale * 10; i++) {
        var d = new Date2(1970 + (i % 60), i % 12, 1 + (i % 28),
                          i % 24, i % 60, (i * 7) % 60);
        acc = (acc + checksumString(formatDate(d))) & 0xffffff;
    }
    return acc;
}

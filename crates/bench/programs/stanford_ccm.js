// stanford-crypto-ccm analog (Kraken): CTR+CBC-MAC composition over the
// same cipher kernel; two state objects alive at once.
function CcmState() { this.counter = 0; }
function MacState() { this.acc = 0; }
function CipherBlock() { this.n = 16; }

function stepCipher(blk, k) {
    var x = k;
    for (var i = 0; i < 16; i++) {
        x = (x ^ blk[i]) | 0;
        x = ((x << 7) | (x >>> 25)) | 0;
        x = (x + 0x9e3779b9) | 0;
        blk[i] = x & 255;
    }
    return x;
}

function ccmEncrypt(ccm, mac, data, n) {
    var blk = new CipherBlock();
    var out = 0;
    for (var off = 0; off + 16 <= n; off += 16) {
        // CTR part.
        for (var i = 0; i < 16; i++) blk[i] = (ccm.counter + i) & 255;
        var ks = stepCipher(blk, ccm.counter);
        ccm.counter = (ccm.counter + 1) | 0;
        // XOR keystream into data; accumulate CBC-MAC.
        for (var i = 0; i < 16; i++) {
            var c = (data[off + i] ^ blk[i]) & 255;
            data[off + i] = c;
            mac.acc = ((mac.acc << 1) | (mac.acc >>> 31)) ^ c;
        }
        out = (out + ks) | 0;
    }
    return out;
}

function Payload() { this.n = 0; }

function bench(scale) {
    var data = new Payload();
    var n = 256;
    for (var i = 0; i < n; i++) data[i] = (i * 37) & 255;
    data.n = n;
    var ccm = new CcmState();
    var mac = new MacState();
    var acc = 0;
    for (var r = 0; r < scale * 20; r++) acc = (acc + ccmEncrypt(ccm, mac, data, n)) | 0;
    return (acc ^ mac.acc) | 0;
}

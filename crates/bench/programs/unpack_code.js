// string-unpack-code analog (SunSpider): decode a packed string into
// tokens; charCodeAt scanning and dictionary lookup via arrays.
var PACKED = 'fn a b c ret add sub mul div mod if else while for var new this 0 1 2 3 4 5 6 7 8 9';

function Dict() { this.count = 0; }

function buildDict(s) {
    var d = new Dict();
    var word = '';
    var n = 0;
    for (var i = 0; i <= s.length; i++) {
        var c = i < s.length ? s.charCodeAt(i) : 32;
        if (c == 32) {
            if (word.length > 0) { d[n] = word; n++; word = ''; }
        } else {
            word = word + s.charAt(i);
        }
    }
    d.count = n;
    return d;
}

function unpack(codes, nCodes, dict) {
    var out = 0;
    for (var i = 0; i < nCodes; i++) {
        var w = dict[codes[i] % dict.count];
        for (var j = 0; j < w.length; j++) out = (out * 17 + w.charCodeAt(j)) & 0xffffff;
    }
    return out;
}

var dict = buildDict(PACKED);

function bench(scale) {
    var codes = [];
    for (var i = 0; i < 64; i++) codes[i] = (i * 13 + 5) & 31;
    var acc = 0;
    for (var r = 0; r < scale * 12; r++) acc = (acc + unpack(codes, 64, dict)) & 0xffffff;
    return acc;
}

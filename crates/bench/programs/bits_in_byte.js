// bitops-bits-in-byte analog (SunSpider): pure SMI bit counting — one of
// the zero-overhead benchmarks in Figure 2.
function bitsinbyte(b) {
    var m = 1, c = 0;
    while (m < 0x100) {
        if (b & m) c++;
        m <<= 1;
    }
    return c;
}

function bench(scale) {
    var acc = 0;
    for (var r = 0; r < scale; r++)
        for (var i = 0; i < 256; i++) acc += bitsinbyte(i);
    return acc;
}

// stanford-crypto-aes analog (Kraken): SMI S-box tables, state object,
// round transforms.
function AesState() { this.rounds = 10; }
function Sbox() { this.n = 256; }

var sbox = new Sbox();
(function() {
    // A simple bijective byte permutation standing in for the AES S-box.
    var p = 1;
    for (var i = 0; i < 256; i++) {
        sbox[i] = (p ^ (p << 1) ^ ((p >> 4) * 9)) & 255;
        p = (p * 3 + 7) & 255;
    }
})();

function subShiftMix(aes) {
    var st = aes.state;
    var sbox = aes.sbox;
    for (var c = 0; c < 4; c++) {
        var a0 = sbox[st[c * 4] & 255];
        var a1 = sbox[st[((c + 1) & 3) * 4 + 1] & 255];
        var a2 = sbox[st[((c + 2) & 3) * 4 + 2] & 255];
        var a3 = sbox[st[((c + 3) & 3) * 4 + 3] & 255];
        st[c * 4] = a0 ^ ((a1 << 1) & 255) ^ a2;
        st[c * 4 + 1] = a1 ^ ((a2 << 1) & 255) ^ a3;
        st[c * 4 + 2] = a2 ^ ((a3 << 1) & 255) ^ a0;
        st[c * 4 + 3] = a3 ^ ((a0 << 1) & 255) ^ a1;
    }
}

function addRoundKey(aes, round) {
    var st = aes.state;
    var key = aes.key;
    for (var i = 0; i < 16; i++) st[i] = (st[i] ^ key[(round * 16 + i) & 63]) & 255;
}

function encryptBlock(aes) {
    addRoundKey(aes, 0);
    var rounds = aes.rounds;
    for (var r = 1; r <= rounds; r++) {
        subShiftMix(aes);
        addRoundKey(aes, r);
    }
}

function Aes() {
    this.rounds = 10;
    this.sbox = sbox;
    this.state = new AesState();
    this.key = new KeySchedule();
}
function KeySchedule() { this.len = 64; }

function bench(scale) {
    var aes = new Aes();
    for (var i = 0; i < 64; i++) aes.key[i] = (i * 73 + 11) & 255;
    for (var i = 0; i < 16; i++) aes.state[i] = i * 11 & 255;
    var acc = 0;
    for (var r = 0; r < scale * 40; r++) {
        encryptBlock(aes);
        acc = (acc + aes.state[0]) & 0xffff;
    }
    return acc;
}

// math-cordic analog (SunSpider): fixed-point CORDIC rotation, SMI
// arithmetic with a table array.
var ANGLES = [];
(function() {
    var v = 45.0;
    for (var i = 0; i < 25; i++) { ANGLES[i] = Math.floor(v * 65536.0); v = v / 2.0; }
})();

function cordicsincos(target) {
    var x = 39796; // 0.6072529350 * 65536
    var y = 0;
    var angle = 0;
    var targetFixed = Math.floor(target * 65536.0);
    for (var i = 0; i < 25; i++) {
        var nx;
        if (angle < targetFixed) {
            nx = x - (y >> i);
            y = (x >> i) + y;
            angle += ANGLES[i];
        } else {
            nx = x + (y >> i);
            y = y - (x >> i);
            angle -= ANGLES[i];
        }
        x = nx;
    }
    return x + y;
}

function bench(scale) {
    var acc = 0;
    for (var r = 0; r < scale * 25; r++) acc = (acc + cordicsincos((r % 90) * 1.0)) | 0;
    return acc;
}

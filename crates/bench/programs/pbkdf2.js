// stanford-crypto-pbkdf2 analog (Kraken): iterated keyed mixing, arrays
// of SMI words plus a key-state object.
function Prf() { this.k0 = 0x36363636 | 0; this.k1 = 0x5c5c5c5c | 0; }
function Block() { this.n = 16; }

function mix(prf, blk) {
    var a = prf.k0;
    var b = prf.k1;
    for (var i = 0; i < 16; i++) {
        var v = blk[i];
        a = (a + ((v ^ b) | 0)) | 0;
        a = ((a << 5) | (a >>> 27)) ^ v;
        b = (b + ((a << 3) | (a >>> 29))) | 0;
        blk[i] = (a ^ (b >>> 7)) | 0;
    }
    prf.k0 = a;
    prf.k1 = b;
    return (a ^ b) | 0;
}

function derive(iterations) {
    var prf = new Prf();
    var blk = new Block();
    for (var i = 0; i < 16; i++) blk[i] = (i * 2654435761) | 0;
    var acc = 0;
    for (var it = 0; it < iterations; it++) acc = (acc + mix(prf, blk)) | 0;
    return acc;
}

function bench(scale) {
    var acc = 0;
    for (var r = 0; r < scale; r++) acc = (acc + derive(160)) | 0;
    return acc;
}

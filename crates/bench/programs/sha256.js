// stanford-crypto-sha256-iterative analog (Kraken): bitwise-heavy SMI
// array kernel with a state object.
function HashState() {
    this.h0 = 0x6a09e667 | 0; this.h1 = 0xbb67ae85 | 0;
    this.h2 = 0x3c6ef372 | 0; this.h3 = 0xa54ff53a | 0;
    this.h4 = 0x510e527f | 0; this.h5 = 0x9b05688c | 0;
    this.h6 = 0x1f83d9ab | 0; this.h7 = 0x5be0cd19 | 0;
}
function WordBlock() { this.n = 64; }

var K = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2];

function rotr(x, n) { return (x >>> n) | (x << (32 - n)); }

function compress(st, w) {
    for (var t = 16; t < 64; t++) {
        var w15 = w[t - 15];
        var w2 = w[t - 2];
        var s0 = rotr(w15, 7) ^ rotr(w15, 18) ^ (w15 >>> 3);
        var s1 = rotr(w2, 17) ^ rotr(w2, 19) ^ (w2 >>> 10);
        w[t] = (w[t - 16] + s0 + w[t - 7] + s1) | 0;
    }
    var a = st.h0, b = st.h1, c = st.h2, d = st.h3;
    var e = st.h4, f = st.h5, g = st.h6, h = st.h7;
    for (var t = 0; t < 64; t++) {
        var S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        var ch = (e & f) ^ (~e & g);
        var t1 = (h + S1 + ch + K[t] + w[t]) | 0;
        var S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        var maj = (a & b) ^ (a & c) ^ (b & c);
        var t2 = (S0 + maj) | 0;
        h = g; g = f; f = e; e = (d + t1) | 0;
        d = c; c = b; b = a; a = (t1 + t2) | 0;
    }
    st.h0 = (st.h0 + a) | 0; st.h1 = (st.h1 + b) | 0;
    st.h2 = (st.h2 + c) | 0; st.h3 = (st.h3 + d) | 0;
    st.h4 = (st.h4 + e) | 0; st.h5 = (st.h5 + f) | 0;
    st.h6 = (st.h6 + g) | 0; st.h7 = (st.h7 + h) | 0;
}

function bench(scale) {
    var st = new HashState();
    var w = new WordBlock();
    for (var i = 0; i < 16; i++) w[i] = (i * 0x01010101) | 0;
    for (var r = 0; r < scale * 8; r++) {
        w[0] = (w[0] + r) | 0;
        compress(st, w);
    }
    return (st.h0 ^ st.h3 ^ st.h7) | 0;
}

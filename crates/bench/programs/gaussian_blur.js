// imaging-gaussian-blur analog (Kraken): separable convolution over an
// image object with unboxed double elements.
function Image(w, h) { this.width = w; this.height = h; }
function Kernel() { this.size = 0; }

function buildImage(w, h) {
    var img = new Image(w, h);
    for (var y = 0; y < h; y++)
        for (var x = 0; x < w; x++)
            img[y * w + x] = ((x * 31 + y * 17) % 255) / 255.0;
    return img;
}

function buildKernel(radius) {
    var k = new Kernel();
    var sigma = radius / 2.0;
    var sum = 0.0;
    for (var i = -radius; i <= radius; i++) {
        var v = Math.exp(-(i * i) / (2.0 * sigma * sigma));
        k[i + radius] = v;
        sum += v;
    }
    for (var j = 0; j < 2 * radius + 1; j++) k[j] = k[j] / sum;
    k.size = 2 * radius + 1;
    return k;
}

function blurPass(src, dst, k, radius, horizontal) {
    var w = src.width;
    var h = src.height;
    for (var y = 0; y < h; y++) {
        for (var x = 0; x < w; x++) {
            var acc = 0.0;
            for (var i = -radius; i <= radius; i++) {
                var sx = horizontal ? x + i : x;
                var sy = horizontal ? y : y + i;
                if (sx < 0) sx = 0;
                if (sy < 0) sy = 0;
                if (sx >= w) sx = w - 1;
                if (sy >= h) sy = h - 1;
                acc += src[sy * w + sx] * k[i + radius];
            }
            dst[y * w + x] = acc;
        }
    }
}

function bench(scale) {
    var radius = 3;
    var k = buildKernel(radius);
    var img = buildImage(24, 24);
    var tmp = new Image(24, 24);
    for (var i = 0; i < 24 * 24; i++) tmp[i] = 0.0;
    var acc = 0.0;
    for (var r = 0; r < scale; r++) {
        blurPass(img, tmp, k, radius, true);
        blurPass(tmp, img, k, radius, false);
        acc += img[300];
    }
    return Math.floor(acc * 1e6);
}

// math-spectral-norm analog (SunSpider): power iteration with double
// vectors stored in wrapper objects.
function Vector(n) { this.n = n; }

function A(i, j) { return 1.0 / ((i + j) * (i + j + 1) / 2 + i + 1); }

function multiplyAv(v, av, n) {
    for (var i = 0; i < n; i++) {
        var sum = 0.0;
        for (var j = 0; j < n; j++) sum += A(i, j) * v[j];
        av[i] = sum;
    }
}

function multiplyAtv(v, atv, n) {
    for (var i = 0; i < n; i++) {
        var sum = 0.0;
        for (var j = 0; j < n; j++) sum += A(j, i) * v[j];
        atv[i] = sum;
    }
}

function multiplyAtAv(v, out, tmp, n) {
    multiplyAv(v, tmp, n);
    multiplyAtv(tmp, out, n);
}

function bench(scale) {
    var n = 8 * scale;
    var u = new Vector(n);
    var v = new Vector(n);
    var tmp = new Vector(n);
    for (var i = 0; i < n; i++) { u[i] = 1.0; v[i] = 0.0; tmp[i] = 0.0; }
    for (var it = 0; it < 8; it++) {
        multiplyAtAv(u, v, tmp, n);
        multiplyAtAv(v, u, tmp, n);
    }
    var vBv = 0.0, vv = 0.0;
    for (var i = 0; i < n; i++) { vBv += u[i] * v[i]; vv += v[i] * v[i]; }
    return Math.floor(Math.sqrt(vBv / vv) * 1e9);
}

// splay analog (Octane): top-down splay tree with allocation churn —
// exercises the GC and pointer-heavy monomorphic nodes.
function SplayNode(key, value) {
    this.key = key;
    this.value = value;
    this.left = NIL_N;
    this.right = NIL_N;
}
var NIL_N = new SplayNode(-1, -1);
NIL_N.left = NIL_N;
NIL_N.right = NIL_N;

function Tree() { this.root = NIL_N; this.size = 0; }

function splay(tree, key) {
    if (tree.root == NIL_N) return;
    var dummy = new SplayNode(0, 0);
    var left = dummy;
    var right = dummy;
    var cur = tree.root;
    for (var guard = 0; guard < 64; guard++) {
        if (key < cur.key) {
            if (cur.left == NIL_N) break;
            if (key < cur.left.key) {
                var y = cur.left;
                cur.left = y.right;
                y.right = cur;
                cur = y;
                if (cur.left == NIL_N) break;
            }
            right.left = cur;
            right = cur;
            cur = cur.left;
        } else if (key > cur.key) {
            if (cur.right == NIL_N) break;
            if (key > cur.right.key) {
                var y2 = cur.right;
                cur.right = y2.left;
                y2.left = cur;
                cur = y2;
                if (cur.right == NIL_N) break;
            }
            left.right = cur;
            left = cur;
            cur = cur.right;
        } else break;
    }
    left.right = cur.left;
    right.left = cur.right;
    cur.left = dummy.right;
    cur.right = dummy.left;
    tree.root = cur;
}

function insert(tree, key, value) {
    if (tree.root == NIL_N) {
        tree.root = new SplayNode(key, value);
        tree.size = tree.size + 1;
        return;
    }
    splay(tree, key);
    if (tree.root.key == key) return;
    var node = new SplayNode(key, value);
    if (key > tree.root.key) {
        node.left = tree.root;
        node.right = tree.root.right;
        tree.root.right = NIL_N;
    } else {
        node.right = tree.root;
        node.left = tree.root.left;
        tree.root.left = NIL_N;
    }
    tree.root = node;
    tree.size = tree.size + 1;
}

function find(tree, key) {
    if (tree.root == NIL_N) return -1;
    splay(tree, key);
    if (tree.root.key == key) return tree.root.value;
    return -1;
}

function bench(scale) {
    var tree = new Tree();
    var acc = 0;
    var key = 1;
    for (var i = 0; i < scale * 40; i++) {
        key = (key * 131 + 7) % 1009;
        insert(tree, key, i);
        if (i % 3 == 0) acc += find(tree, (key * 17) % 1009);
    }
    return acc + tree.size;
}

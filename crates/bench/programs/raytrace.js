// raytrace analog (Octane): recursive shading with vector/material/shape
// objects; one of the two benchmarks exceeding 32 hidden classes in the
// paper — emulated with extra material/light classes.
function V3(x, y, z) { this.x = x; this.y = y; this.z = z; }
function Mat1(r) { this.reflect = r; this.shade = 0.9; }
function Mat2(r) { this.reflect = r; this.shade = 0.7; }
function Mat3(r) { this.reflect = r; this.shade = 0.5; }
function Light(pos, power) { this.pos = pos; this.power = power; }
function Ball(center, radius, mat) {
    this.center = center;
    this.radius = radius;
    this.mat = mat;
}
function World() { this.nBalls = 0; this.nLights = 0; }

function vdot(a, b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
function vsub(a, b) { return new V3(a.x - b.x, a.y - b.y, a.z - b.z); }
function vscale(a, s) { return new V3(a.x * s, a.y * s, a.z * s); }
function vadd(a, b) { return new V3(a.x + b.x, a.y + b.y, a.z + b.z); }

function hitBall(ball, orig, dir) {
    var oc = vsub(orig, ball.center);
    var b = 2.0 * vdot(oc, dir);
    var c = vdot(oc, oc) - ball.radius * ball.radius;
    var disc = b * b - 4.0 * c;
    if (disc < 0.0) return -1.0;
    return (-b - Math.sqrt(disc)) * 0.5;
}

function shade(world, orig, dir, depth) {
    var best = 1e30;
    var hit = world.ball0;
    var found = 0;
    for (var i = 0; i < world.nBalls; i++) {
        var t = hitBall(world[i], orig, dir);
        if (t > 0.001 && t < best) { best = t; hit = world[i]; found = 1; }
    }
    if (!found) return 0.05;
    var point = vadd(orig, vscale(dir, best));
    var normal = vscale(vsub(point, hit.center), 1.0 / hit.radius);
    var brightness = 0.0;
    for (var l = 0; l < world.nLights; l++) {
        var light = world.lights[l];
        var toLight = vsub(light.pos, point);
        var d = vdot(normal, toLight);
        if (d > 0.0) brightness += d * light.power * 0.01;
    }
    var col = brightness * hit.mat.shade;
    if (depth < 2 && hit.mat.reflect > 0.0) {
        var refl = vsub(dir, vscale(normal, 2.0 * vdot(dir, normal)));
        col += hit.mat.reflect * shade(world, point, refl, depth + 1);
    }
    return col;
}

function LightList() { this.n = 0; }

function makeWorld() {
    var w = new World();
    w[0] = new Ball(new V3(0.0, 0.0, 6.0), 1.5, new Mat1(0.4));
    w[1] = new Ball(new V3(2.0, 1.0, 8.0), 1.0, new Mat2(0.2));
    w[2] = new Ball(new V3(-2.5, -0.5, 7.0), 1.2, new Mat3(0.0));
    w[3] = new Ball(new V3(0.5, -2.0, 5.0), 0.6, new Mat1(0.7));
    w.nBalls = 4;
    w.ball0 = w[0];
    var lights = new LightList();
    lights[0] = new Light(new V3(5.0, 5.0, 0.0), 8.0);
    lights[1] = new Light(new V3(-5.0, 3.0, 1.0), 5.0);
    w.lights = lights;
    w.nLights = 2;
    return w;
}

function bench(scale) {
    var world = makeWorld();
    var orig = new V3(0.0, 0.0, 0.0);
    var acc = 0.0;
    var size = 8 + scale;
    for (var py = 0; py < size; py++) {
        for (var px = 0; px < size * 2; px++) {
            var dir = new V3((px - size) / size, (py - size / 2.0) / size, 1.0);
            var inv = 1.0 / Math.sqrt(vdot(dir, dir));
            acc += shade(world, orig, vscale(dir, inv), 0);
        }
    }
    return Math.floor(acc * 1e4);
}

// pdfjs analog (Octane): stream decoding — bit reader object over a byte
// array, dictionary objects, Huffman-ish table walks.
function BitReader(data, n) {
    this.data = data;
    this.n = n;
    this.pos = 0;
    this.bitBuf = 0;
    this.bitCnt = 0;
}
function ByteData() { this.len = 0; }
function DecodeTable() { this.size = 0; }

function readBits(br, count) {
    while (br.bitCnt < count) {
        br.bitBuf = (br.bitBuf << 8) | br.data[br.pos % br.n];
        br.pos = br.pos + 1;
        br.bitCnt = br.bitCnt + 8;
    }
    br.bitCnt = br.bitCnt - count;
    var v = (br.bitBuf >> br.bitCnt) & ((1 << count) - 1);
    return v;
}

function decode(br, table, count) {
    var out = 0;
    for (var i = 0; i < count; i++) {
        var code = readBits(br, 5);
        var sym = table[code];
        if (sym >= 24) sym = sym - readBits(br, 2);
        out = (out * 33 + sym) & 0xffffff;
    }
    return out;
}

function bench(scale) {
    var data = new ByteData();
    for (var i = 0; i < 512; i++) data[i] = (i * 89 + 7) & 255;
    data.len = 512;
    var table = new DecodeTable();
    for (var i = 0; i < 32; i++) table[i] = (i * 13) & 31;
    table.size = 32;
    var acc = 0;
    for (var r = 0; r < scale; r++) {
        var br = new BitReader(data, 512);
        acc = (acc + decode(br, table, 600)) & 0xffffff;
    }
    return acc;
}

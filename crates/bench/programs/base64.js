// string-base64 analog (SunSpider): encode bytes to base64 via
// fromCharCode/charCodeAt; dominated by non-optimized string runtime in
// the paper (near-zero check overhead).
var CHARS = 'ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/';

function toBase64(bytes, n) {
    var out = '';
    for (var i = 0; i + 2 < n; i += 3) {
        var b = (bytes[i] << 16) | (bytes[i + 1] << 8) | bytes[i + 2];
        out = out + CHARS.charAt((b >> 18) & 63) + CHARS.charAt((b >> 12) & 63)
                  + CHARS.charAt((b >> 6) & 63) + CHARS.charAt(b & 63);
    }
    return out;
}

function bench(scale) {
    var bytes = [];
    for (var i = 0; i < 96; i++) bytes[i] = (i * 41 + 3) & 255;
    var acc = 0;
    for (var r = 0; r < scale * 4; r++) {
        var s = toBase64(bytes, 96);
        acc = (acc + s.charCodeAt(r % s.length)) & 0xffffff;
    }
    return acc;
}

// richards analog (Octane): task scheduler with linked TCB objects,
// packets and per-task state — heavily monomorphic property traffic.
function Packet(link, id, kind) {
    this.link = link;
    this.id = id;
    this.kind = kind;
    this.a1 = 0;
    this.a2 = 0;
}
function Task(id, priority) {
    this.id = id;
    this.priority = priority;
    this.queue = null2();
    this.state = 0;
    this.count = 0;
    this.work = 0;
}
function Scheduler() {
    this.queueCount = 0;
    this.holdCount = 0;
    this.current = 0;
}
function TaskList() { this.n = 0; }

// A shared sentinel keeps `link`/`queue` slots monomorphic (Packet/Task
// slots never alternate with null).
var NIL_PACKET = new Packet(0, -1, -1);
NIL_PACKET.link = NIL_PACKET;
function null2() { return NIL_PACKET; }

function enqueue(task, packet) {
    packet.link = NIL_PACKET;
    if (task.queue == NIL_PACKET) {
        task.queue = packet;
        return;
    }
    var p = task.queue;
    while (p.link != NIL_PACKET) p = p.link;
    p.link = packet;
}

function dequeue(task) {
    var p = task.queue;
    task.queue = p.link;
    return p;
}

function runTask(sched, task) {
    if (task.queue == NIL_PACKET) {
        task.work = task.work + 1;
        return;
    }
    var p = dequeue(task);
    sched.queueCount = sched.queueCount + 1;
    task.count = task.count + 1;
    task.state = (task.state + p.kind) & 7;
    p.a1 = (p.a1 + task.id) & 0xffff;
    p.a2 = (p.a2 ^ p.a1) & 0xffff;
}

function schedule(sched, tasks, rounds) {
    for (var r = 0; r < rounds; r++) {
        for (var i = 0; i < tasks.n; i++) {
            var t = tasks[i];
            runTask(sched, t);
            // Produce packets for the next task in line.
            if ((r + i) % 3 == 0) {
                var target = tasks[(i + 1) % tasks.n];
                enqueue(target, new Packet(NIL_PACKET, r & 255, i & 3));
            }
        }
    }
}

function bench(scale) {
    var sched = new Scheduler();
    var tasks = new TaskList();
    for (var i = 0; i < 6; i++) tasks[i] = new Task(i, 6 - i);
    tasks.n = 6;
    schedule(sched, tasks, scale * 12);
    var acc = sched.queueCount * 1000;
    for (var i = 0; i < 6; i++) acc += tasks[i].count + tasks[i].state + tasks[i].work;
    return acc;
}

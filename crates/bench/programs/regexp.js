// regexp analog (Octane): a tiny NFA-free matcher (literal + classes +
// star) driven over strings — string/runtime dominated.
function Pattern(src) { this.src = src; this.len = src.length; }

function matchClass(c, cls) {
    if (cls == 0) return c >= 97 && c <= 122;    // [a-z]
    if (cls == 1) return c >= 48 && c <= 57;     // [0-9]
    return c == 32;                              // space
}

function matchAt(text, pos, pat) {
    var p = 0;
    var t = pos;
    while (p < pat.len) {
        var pc = pat.src.charCodeAt(p);
        if (pc == 42) { // '*': previous class, greedy
            var cls = pat.src.charCodeAt(p - 1) - 48;
            while (t < text.length && matchClass(text.charCodeAt(t), cls)) t++;
            p++;
        } else if (pc >= 48 && pc <= 50) { // class digit
            if (t < text.length && (p + 1 < pat.len && pat.src.charCodeAt(p + 1) == 42)) {
                p++; // star handles it
            } else {
                if (t >= text.length || !matchClass(text.charCodeAt(t), pc - 48)) return -1;
                t++;
                p++;
            }
        } else {
            if (t >= text.length || text.charCodeAt(t) != pc) return -1;
            t++;
            p++;
        }
    }
    return t - pos;
}

function countMatches(text, pat) {
    var count = 0;
    for (var i = 0; i < text.length; i++) {
        if (matchAt(text, i, pat) >= 0) count++;
    }
    return count;
}

var TEXT = 'the year 2017 saw 42 papers about jit compilers and 7 about caches ' +
           'while 1999 had none but plenty of hype about the web and its 90 percent';

function bench(scale) {
    var pats = [new Pattern('0*2'), new Pattern('1*'), new Pattern('the'), new Pattern('a0*')];
    var acc = 0;
    for (var r = 0; r < scale * 6; r++) {
        for (var p = 0; p < pats.length; p++) acc += countMatches(TEXT, pats[p]);
    }
    return acc;
}

// earley-boyer analog (Octane): symbolic term rewriting over cons cells;
// allocation-heavy tagged structures with recursion.
function Cons(car, cdr) { this.car = car; this.cdr = cdr; }
function Sym(id) { this.id = id; }
var NIL = new Sym(0);
var TRUE_S = new Sym(1);
var FALSE_S = new Sym(2);

function list3(a, b, c) { return new Cons(a, new Cons(b, new Cons(c, NIL_CONS))); }
var NIL_CONS = new Cons(NIL, NIL);
NIL_CONS.cdr = NIL_CONS;
NIL_CONS.car = NIL;

function termSize(t, depth) {
    if (depth > 12) return 1;
    if (t == NIL_CONS) return 0;
    var n = 1;
    var c = t;
    var guard = 0;
    while (c != NIL_CONS && guard < 16) {
        var head = c.car;
        n += rewriteCount(head, depth + 1);
        c = c.cdr;
        guard++;
    }
    return n;
}

function rewriteCount(t, depth) {
    // Symbols count 1; conses recurse.
    if (depth > 12) return 1;
    var s = 1;
    // tag dispatch through a property common to both classes
    if (t.id == undefined) s += termSize(t, depth);
    return s;
}

function buildTerm(seed, depth) {
    if (depth == 0) return new Sym(3 + (seed % 7));
    return list3(
        buildTerm(seed * 3 + 1, depth - 1),
        buildTerm(seed * 5 + 2, depth - 1),
        new Sym(seed % 11));
}

function rewrite(t, depth) {
    // (f a b) -> (f b a) style flip, allocating fresh cells.
    if (depth > 6) return t;
    if (t.id != undefined) return t;
    var a = t.car;
    var d = t.cdr;
    if (d == NIL_CONS) return new Cons(rewrite(a, depth + 1), NIL_CONS);
    return new Cons(rewrite(d.car, depth + 1), new Cons(rewrite(a, depth + 1), d.cdr));
}

function bench(scale) {
    var acc = 0;
    for (var r = 0; r < scale; r++) {
        var t = buildTerm(r + 1, 5);
        for (var i = 0; i < 4; i++) t = rewrite(t, 0);
        acc += termSize(t, 0);
    }
    return acc;
}

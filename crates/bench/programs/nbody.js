// access-nbody analog (SunSpider): planetary simulation with objects
// holding double-typed properties — untagging checks dominate.
function Body(x, y, z, vx, vy, vz, mass) {
    this.x = x; this.y = y; this.z = z;
    this.vx = vx; this.vy = vy; this.vz = vz;
    this.mass = mass;
}
function System() { this.n = 0; }

function makeSystem() {
    var s = new System();
    s[0] = new Body(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 39.47841760435743);
    s[1] = new Body(4.841431442464721, -1.1603200440274284, -0.10362204447112311,
                    0.606326392995832, 2.81198684491626, -0.02521836165988763, 0.03769367487038949);
    s[2] = new Body(8.34336671824458, 4.124798564124305, -0.4035234171143214,
                    -1.0107743461787924, 1.8256623712304119, 0.008415761376584154, 0.011286326131968767);
    s[3] = new Body(12.894369562139131, -15.111151401698631, -0.22330757889265573,
                    1.0827910064415354, 0.8687130181696082, -0.010832637401363636, 0.0017237240570597112);
    s[4] = new Body(15.379697114850917, -25.919314609987964, 0.17925877295037118,
                    0.979090732243898, 0.5946989986476762, -0.034755955504078104, 0.0002033686869335811);
    s.n = 5;
    return s;
}

function advance(s, dt) {
    var n = s.n;
    for (var i = 0; i < n; i++) {
        var bi = s[i];
        for (var j = i + 1; j < n; j++) {
            var bj = s[j];
            var dx = bi.x - bj.x;
            var dy = bi.y - bj.y;
            var dz = bi.z - bj.z;
            var d2 = dx * dx + dy * dy + dz * dz;
            var mag = dt / (d2 * Math.sqrt(d2));
            bi.vx = bi.vx - dx * bj.mass * mag;
            bi.vy = bi.vy - dy * bj.mass * mag;
            bi.vz = bi.vz - dz * bj.mass * mag;
            bj.vx = bj.vx + dx * bi.mass * mag;
            bj.vy = bj.vy + dy * bi.mass * mag;
            bj.vz = bj.vz + dz * bi.mass * mag;
        }
    }
    for (var k = 0; k < n; k++) {
        var b = s[k];
        b.x = b.x + dt * b.vx;
        b.y = b.y + dt * b.vy;
        b.z = b.z + dt * b.vz;
    }
}

function energy(s) {
    var e = 0.0;
    var n = s.n;
    for (var i = 0; i < n; i++) {
        var bi = s[i];
        e += 0.5 * bi.mass * (bi.vx * bi.vx + bi.vy * bi.vy + bi.vz * bi.vz);
        for (var j = i + 1; j < n; j++) {
            var bj = s[j];
            var dx = bi.x - bj.x;
            var dy = bi.y - bj.y;
            var dz = bi.z - bj.z;
            e -= bi.mass * bj.mass / Math.sqrt(dx * dx + dy * dy + dz * dz);
        }
    }
    return e;
}

function bench(scale) {
    var s = makeSystem();
    var e0 = energy(s);
    for (var i = 0; i < scale * 10; i++) advance(s, 0.01);
    return Math.floor((e0 - energy(s)) * 1e9);
}

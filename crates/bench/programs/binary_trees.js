// access-binary-trees analog (SunSpider): allocation-heavy recursive
// tree construction and checksum walks.
function TreeNode(left, right, item) {
    this.left = left;
    this.right = right;
    this.item = item;
}

function bottomUpTree(item, depth) {
    if (depth > 0) {
        return new TreeNode(
            bottomUpTree(2 * item - 1, depth - 1),
            bottomUpTree(2 * item, depth - 1),
            item);
    }
    return new TreeNode(null, null, item);
}

function itemCheck(node) {
    if (node.left == null) return node.item;
    return node.item + itemCheck(node.left) - itemCheck(node.right);
}

function bench(scale) {
    var check = 0;
    var maxDepth = 6;
    for (var d = 3; d <= maxDepth; d++) {
        var iters = scale << (maxDepth - d);
        for (var i = 1; i <= iters; i++) {
            check += itemCheck(bottomUpTree(i, d));
            check += itemCheck(bottomUpTree(-i, d));
        }
    }
    return check;
}

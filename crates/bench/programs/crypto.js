// crypto analog (Octane): bignum modular arithmetic over SMI digit
// arrays held in BigInt wrapper objects (as in the original's BigInteger).
function BigInt(n) { this.t = n; this.s = 0; }

function bnNew(value) {
    var b = new BigInt(0);
    var i = 0;
    while (value > 0) {
        b[i] = value % 32768;
        value = Math.floor(value / 32768);
        i++;
    }
    b.t = i;
    return b;
}

function bnMulMod(a, b, m) {
    // Multiply two bignums then reduce by repeated subtraction-free mod:
    // keep digits bounded via carry propagation and a cheap fold.
    var r = new BigInt(0);
    var n = a.t + b.t;
    for (var i = 0; i < n; i++) r[i] = 0;
    r.t = n;
    for (var i = 0; i < a.t; i++) {
        var carry = 0;
        var ai = a[i];
        for (var j = 0; j < b.t; j++) {
            var v = r[i + j] + ai * b[j] + carry;
            r[i + j] = v % 32768;
            carry = Math.floor(v / 32768);
        }
        r[i + b.t] = r[i + b.t] + carry;
    }
    // fold down modulo a pseudo-prime
    var acc = 0;
    for (var i = r.t - 1; i >= 0; i--) acc = (acc * 7 + r[i]) % m;
    return bnNew(acc);
}

function modPow(base, exp, m) {
    var result = bnNew(1);
    var b = bnNew(base);
    while (exp > 0) {
        if (exp & 1) result = bnMulMod(result, b, m);
        b = bnMulMod(b, b, m);
        exp >>= 1;
    }
    var acc = 0;
    for (var i = result.t - 1; i >= 0; i--) acc = (acc * 31 + result[i]) & 0xffffff;
    return acc;
}

function bench(scale) {
    var acc = 0;
    for (var r = 0; r < scale; r++) {
        acc = (acc + modPow(12345 + r, 65537, 99991)) & 0xffffff;
    }
    return acc;
}

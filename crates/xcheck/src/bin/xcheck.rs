//! `xcheck` — differential seed sweep.
//!
//! ```text
//! xcheck [--seed N] [--count N] [--jobs N] [--quick]
//!        [--dump-dir DIR] [--max-shrink N]
//! ```
//!
//! Generates `--count` programs from consecutive seeds starting at
//! `--seed`, runs each under the reference interpreter and the six
//! engine configurations, and reports divergences. Every mismatch is
//! shrunk to a minimal reproducer and dumped under `--dump-dir`
//! (default `results/xcheck`). The stdout report depends only on the
//! seed range and engine behaviour — it is byte-identical at any
//! `--jobs`; timing goes to stderr. Exit status is nonzero iff a
//! mismatch was found.

use checkelide_bench::Cli;
use checkelide_xcheck::{sweep, SweepOptions};
use std::time::Instant;

fn main() {
    let cli = Cli::parse();
    let opts = SweepOptions {
        seed0: cli.u64_or("--seed", 1),
        count: cli.u64_or("--count", if cli.quick { 50 } else { 300 }),
        jobs: cli.jobs,
        dump_dir: Some(cli.value_of("--dump-dir").unwrap_or("results/xcheck").into()),
        max_shrink: cli.usize_or("--max-shrink", 2000),
    };

    let t0 = Instant::now();
    let report = sweep(&opts);
    print!("{}", report.render());
    eprintln!(
        "[xcheck] {} seeds x {} configs in {:.2?} ({} jobs)",
        opts.count,
        checkelide_xcheck::config_matrix().len(),
        t0.elapsed(),
        opts.jobs
    );
    if !report.mismatches.is_empty() {
        if let Some(dir) = &opts.dump_dir {
            eprintln!("[xcheck] reproducers dumped under {}", dir.display());
        }
        std::process::exit(1);
    }
}

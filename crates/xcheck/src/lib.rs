//! Differential execution oracle for the njs engine.
//!
//! The engine in `crates/engine` + `crates/opt` is an aggressive
//! multi-tier VM: hidden classes, SMI/double tagging, elements-kind
//! transitions, allocation-site feedback, speculative optimization with
//! Class-Cache-driven check elision, deoptimization and OSR-out. Each of
//! those layers is a place where observable behaviour could silently
//! diverge from the language definition. This crate provides the
//! machinery to find such divergences automatically:
//!
//! * [`reference`] — a deliberately naive tree-walking interpreter over
//!   the `checkelide-lang` AST. No hidden classes, no tiers, no tagging:
//!   it defines the ground-truth observable behaviour (printed output,
//!   final value, thrown runtime errors) that every engine configuration
//!   must reproduce bit-for-bit.
//! * [`generate`] — a seeded, deterministic njs program generator biased
//!   toward the engine's soft spots: constructor transition chains,
//!   properties flipping SMI→double→tagged mid-loop, elements-kind
//!   transitions, megamorphic call sites, and stores that fire
//!   misspeculation inside optimized regions.
//! * [`diff`] — the differential runner: executes each program under the
//!   reference interpreter and a matrix of engine configurations
//!   (baseline-only; optimizer without elision; Class Cache speculation;
//!   speculation with `max_deopts` forced low to exercise the
//!   epoch-bump/OSR-out path) and asserts identical observables.
//! * [`shrink`] — on a mismatch, reduces the failing program to a
//!   minimal reproducer (statement deletion to fixpoint plus literal
//!   reduction) and dumps it with its seed under `results/xcheck/`.
//!
//! The `xcheck` binary drives a seed sweep in parallel via the
//! fault-isolated worker pool from `checkelide-bench`; given the same
//! seed range it produces a byte-identical report at any `--jobs`.

pub mod diff;
pub mod generate;
pub mod reference;
pub mod shrink;

pub use diff::{
    check_source, config_matrix, run_engine, sweep, Mismatch, Observed, SweepOptions,
    SweepReport, ENGINE_STEP_BUDGET,
};
pub use generate::generate_source;
pub use reference::{run_reference, REF_STEP_BUDGET};
pub use shrink::{shrink_source, ShrinkOptions};

//! The reference interpreter: ground truth for njs observable behaviour.
//!
//! A deliberately naive tree-walking evaluator over the
//! [`checkelide_lang`] AST. It shares **no code** with the engine's
//! execution tiers: no bytecode, no hidden classes, no SMI/double
//! tagging, no inline caches, no optimizer. Numbers are plain `f64`,
//! objects are insertion-ordered property lists, and control flow is
//! plain recursion. What it *does* model — carefully — is every piece of
//! engine behaviour that is observable through `print`, the program's
//! final value, or thrown errors:
//!
//! * the exact error messages and the points at which they are raised
//!   (evaluation order mirrors the bytecode compiler's desugarings, e.g.
//!   compound assignment reads the old value *before* evaluating the
//!   right-hand side);
//! * elements-kind semantics: hole reads are kind-dependent (`0` for
//!   SMI/double stores past the end, `undefined` for tagged), kind
//!   transitions and backing-store growth discard stale out-of-length
//!   slots, while in-capacity length bumps resurrect them (`pop` then
//!   sparse store);
//! * allocation-site feedback: a constructor whose instances ever
//!   reached a more general elements kind starts subsequent instances at
//!   that kind (so their hole fills differ) — observable in every engine
//!   configuration, so the reference models it too;
//! * the engine's SMI/heap-number split in the *one* place it leaks into
//!   semantics: `n[i]` errors with "cannot index a number" only when `n`
//!   is SMI-representable, and yields `undefined` otherwise;
//! * deterministic `Math.random` (the same xorshift64* stream) and the
//!   exact builtin quirks (`charCodeAt` with a NaN index reads byte 0,
//!   `parseInt`'s radix handling, `Math.round` as `floor(x + 0.5)`, ...).
//!
//! Known deliberate divergence: duplicate parameter names (never
//! produced by the generator) — the engine's slot allocator aliases
//! them, the reference binds positionally.

use checkelide_lang::{parse_program, BinOp, Expr, FuncDecl, LogOp, Stmt, UnOp, UpdateOp};
use std::collections::HashMap;
use std::rc::Rc;

/// A reference-interpreter value.
#[derive(Debug, Clone)]
pub enum RVal {
    /// Any number (the engine's SMI/HeapNumber split is modelled where
    /// observable via [`f64_fits_smi`]).
    Num(f64),
    /// String (content-compared; the engine interns, same observables).
    Str(Rc<str>),
    /// Boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// `undefined`.
    Undefined,
    /// Object handle into the interpreter's arena.
    Obj(usize),
    /// Function value.
    Func(RFunc),
}

/// Function identity: user functions by registration index (one per
/// declaration/expression site, mirroring the engine's per-site cached
/// function objects), builtins by discriminant (the engine allocates one
/// function object per installed builtin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RFunc {
    /// User function (index into the interpreter's function table).
    User(usize),
    /// Native builtin.
    Builtin(RBuiltin),
}

/// Builtins that exist as *values* (Math members, `String.fromCharCode`,
/// the global functions). String/array methods are method-dispatched
/// only and never appear as values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum RBuiltin {
    Sqrt,
    Abs,
    Floor,
    Ceil,
    Round,
    Sin,
    Cos,
    Tan,
    Atan,
    Atan2,
    Pow,
    Exp,
    Log,
    Min,
    Max,
    Random,
    FromCharCode,
    Print,
    ParseInt,
    ParseFloat,
}

/// Elements kind lattice (mirrors `checkelide_runtime::ElemKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EKind {
    Smi,
    Double,
    Tagged,
}

impl EKind {
    fn join(a: EKind, b: EKind) -> EKind {
        match (a, b) {
            (EKind::Smi, k) | (k, EKind::Smi) => k,
            (EKind::Double, EKind::Double) => EKind::Double,
            _ => EKind::Tagged,
        }
    }
}

/// An object's elements store: `slots.len()` is the capacity; `len` is
/// the observable array length. Slots between `len` and capacity hold
/// either the kind's fill value or stale data (after `pop`), exactly as
/// in the engine's backing stores.
#[derive(Debug, Clone)]
struct RElems {
    kind: EKind,
    len: usize,
    slots: Vec<RVal>,
}

impl RElems {
    fn new(kind: EKind) -> RElems {
        RElems { kind, len: 0, slots: Vec::new() }
    }

    fn fill(kind: EKind) -> RVal {
        match kind {
            EKind::Smi | EKind::Double => RVal::Num(0.0),
            EKind::Tagged => RVal::Undefined,
        }
    }
}

/// A heap object: insertion-ordered named properties plus elements.
#[derive(Debug, Clone)]
struct RObj {
    props: Vec<(Rc<str>, RVal)>,
    elems: RElems,
}

/// Whether an `f64` is SMI-representable in the engine (integral, i32
/// range, not `-0`). Mirrors `Value::f64_fits_smi`.
pub fn f64_fits_smi(v: f64) -> bool {
    v.trunc() == v
        && v >= i32::MIN as f64
        && v <= i32::MAX as f64
        && !(v == 0.0 && v.is_sign_negative())
}

/// Format an `f64` the way the engine's `format_f64` does.
fn format_num(f: f64) -> String {
    if f.is_nan() {
        return "NaN".into();
    }
    if f.is_infinite() {
        return if f > 0.0 { "Infinity".into() } else { "-Infinity".into() };
    }
    if f == f.trunc() && f.abs() < 1e21 {
        format!("{}", f as i64)
    } else {
        format!("{f}")
    }
}

/// Statement-level control flow.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(RVal),
}

type RResult<T> = Result<T, String>;

/// Reference-interpreter fuel: statements + expressions evaluated before
/// aborting. Generated programs use a few tens of thousands of steps at
/// most; only genuinely runaway candidates (e.g. a shrink edit that
/// turns `i++` into `i`) get anywhere near this. The engine side uses
/// [`ENGINE_STEP_BUDGET`](crate::diff) for the same purpose — both
/// bounds sit orders of magnitude above any legitimate program, so a
/// program either terminates under all executors or exceeds the budget
/// under all of them.
pub const REF_STEP_BUDGET: u64 = 500_000;

/// What a program run observably produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefOutput {
    /// Lines emitted by `print`.
    pub output: Vec<String>,
    /// Display string of the final value, or the runtime error message.
    pub result: Result<String, String>,
}

/// Parse and run a program under the reference interpreter.
///
/// Parse errors are reported through `result`'s error side with the
/// same message the engine would produce (`parse error at ...`).
pub fn run_reference(src: &str) -> RefOutput {
    let program = match parse_program(src) {
        Ok(p) => p,
        Err(e) => return RefOutput { output: Vec::new(), result: Err(e.to_string()) },
    };
    let main = Rc::new(FuncDecl {
        name: "<main>".into(),
        params: vec![],
        body: program.body,
        line: 1,
    });
    let mut interp = Interp::new();
    let r = interp.call_decl(&main, RVal::Undefined, &[], true);
    RefOutput {
        output: std::mem::take(&mut interp.output),
        result: r.map(|v| interp.display(&v)),
    }
}

struct Interp {
    objs: Vec<RObj>,
    globals: HashMap<String, RVal>,
    funcs: Vec<Rc<FuncDecl>>,
    func_ix: HashMap<usize, usize>,
    /// Allocation-site elements-kind feedback, per constructor.
    ctor_kind: Vec<EKind>,
    output: Vec<String>,
    prng: u64,
    depth: u32,
    /// Evaluation-step fuel; hitting zero aborts with the same
    /// `step budget exceeded` error the engine produces, so runaway
    /// shrink candidates fail *identically* under every executor.
    steps: u64,
}

struct Scope {
    /// `None` for the global (main) scope: names resolve to globals.
    locals: Option<HashMap<String, RVal>>,
    this: RVal,
}

impl Interp {
    fn new() -> Interp {
        let mut it = Interp {
            objs: Vec::new(),
            globals: HashMap::new(),
            funcs: Vec::new(),
            func_ix: HashMap::new(),
            ctor_kind: Vec::new(),
            output: Vec::new(),
            prng: 0x9E37_79B9_7F4A_7C15,
            depth: 0,
            steps: REF_STEP_BUDGET,
        };
        it.install_globals();
        it
    }

    fn alloc(&mut self, kind: EKind) -> usize {
        self.objs.push(RObj { props: Vec::new(), elems: RElems::new(kind) });
        self.objs.len() - 1
    }

    fn install_globals(&mut self) {
        use RBuiltin::*;
        let math = self.alloc(EKind::Smi);
        for (n, b) in [
            ("sqrt", Sqrt),
            ("abs", Abs),
            ("floor", Floor),
            ("ceil", Ceil),
            ("round", Round),
            ("sin", Sin),
            ("cos", Cos),
            ("tan", Tan),
            ("atan", Atan),
            ("atan2", Atan2),
            ("pow", Pow),
            ("exp", Exp),
            ("log", Log),
            ("min", Min),
            ("max", Max),
            ("random", Random),
        ] {
            self.objs[math].props.push((n.into(), RVal::Func(RFunc::Builtin(b))));
        }
        self.globals.insert("Math".into(), RVal::Obj(math));

        let string = self.alloc(EKind::Smi);
        self.objs[string].props.push(("fromCharCode".into(), RVal::Func(RFunc::Builtin(FromCharCode))));
        self.globals.insert("String".into(), RVal::Obj(string));

        self.globals.insert("print".into(), RVal::Func(RFunc::Builtin(Print)));
        self.globals.insert("parseInt".into(), RVal::Func(RFunc::Builtin(ParseInt)));
        self.globals.insert("parseFloat".into(), RVal::Func(RFunc::Builtin(ParseFloat)));
    }

    /// Register a function declaration site (idempotent per `Rc`
    /// identity, mirroring the engine's per-site function table).
    fn register(&mut self, decl: &Rc<FuncDecl>) -> usize {
        let key = Rc::as_ptr(decl) as usize;
        if let Some(&ix) = self.func_ix.get(&key) {
            return ix;
        }
        let ix = self.funcs.len();
        self.funcs.push(decl.clone());
        self.ctor_kind.push(EKind::Smi);
        self.func_ix.insert(key, ix);
        ix
    }

    // ----- conversions -----

    fn to_f64(&self, v: &RVal) -> f64 {
        match v {
            RVal::Num(f) => *f,
            RVal::Bool(b) => *b as u32 as f64,
            RVal::Null => 0.0,
            RVal::Undefined => f64::NAN,
            RVal::Str(s) => {
                let t = s.trim();
                if t.is_empty() {
                    0.0
                } else {
                    t.parse::<f64>().unwrap_or(f64::NAN)
                }
            }
            RVal::Func(_) | RVal::Obj(_) => f64::NAN,
        }
    }

    fn to_int32(&self, v: &RVal) -> i32 {
        let f = self.to_f64(v);
        if !f.is_finite() {
            return 0;
        }
        (f.trunc() as i64 as u64) as u32 as i32
    }

    fn to_uint32(&self, v: &RVal) -> u32 {
        self.to_int32(v) as u32
    }

    fn is_truthy(&self, v: &RVal) -> bool {
        match v {
            RVal::Num(f) => *f != 0.0 && !f.is_nan(),
            RVal::Str(s) => !s.is_empty(),
            RVal::Bool(b) => *b,
            RVal::Null | RVal::Undefined => false,
            RVal::Obj(_) | RVal::Func(_) => true,
        }
    }

    fn display(&self, v: &RVal) -> String {
        match v {
            RVal::Num(f) => format_num(*f),
            RVal::Str(s) => s.to_string(),
            RVal::Bool(b) => format!("{b}"),
            RVal::Null => "null".into(),
            RVal::Undefined => "undefined".into(),
            RVal::Func(_) => "function".into(),
            RVal::Obj(_) => "[object Object]".into(),
        }
    }

    // ----- equality & comparison -----

    fn strict_eq(&self, a: &RVal, b: &RVal) -> bool {
        match (a, b) {
            (RVal::Num(x), RVal::Num(y)) => x == y,
            (RVal::Str(x), RVal::Str(y)) => x == y,
            (RVal::Bool(x), RVal::Bool(y)) => x == y,
            (RVal::Null, RVal::Null) | (RVal::Undefined, RVal::Undefined) => true,
            (RVal::Obj(x), RVal::Obj(y)) => x == y,
            (RVal::Func(x), RVal::Func(y)) => x == y,
            _ => false,
        }
    }

    /// njs loose equality: mirrors `numops::loose_eq` arm-for-arm
    /// (notably `null == 0` is `true` here — njs coerces null through
    /// `ToNumber` for the numeric arm).
    fn loose_eq(&self, a: &RVal, b: &RVal) -> bool {
        match (a, b) {
            (RVal::Null, RVal::Undefined) | (RVal::Undefined, RVal::Null) => true,
            (RVal::Null, RVal::Null) | (RVal::Undefined, RVal::Undefined) => true,
            (RVal::Obj(x), RVal::Obj(y)) => x == y,
            (RVal::Func(x), RVal::Func(y)) => x == y,
            (RVal::Str(x), RVal::Str(y)) => x == y,
            (RVal::Obj(_) | RVal::Func(_), _) | (_, RVal::Obj(_) | RVal::Func(_)) => false,
            _ => self.to_f64(a) == self.to_f64(b),
        }
    }

    fn compare(&self, op: BinOp, a: &RVal, b: &RVal) -> bool {
        if let (RVal::Str(x), RVal::Str(y)) = (a, b) {
            return match op {
                BinOp::Lt => x < y,
                BinOp::Le => x <= y,
                BinOp::Gt => x > y,
                BinOp::Ge => x >= y,
                _ => unreachable!(),
            };
        }
        let (x, y) = (self.to_f64(a), self.to_f64(b));
        match op {
            BinOp::Lt => x < y,
            BinOp::Le => x <= y,
            BinOp::Gt => x > y,
            BinOp::Ge => x >= y,
            _ => unreachable!(),
        }
    }

    fn binop(&mut self, op: BinOp, a: &RVal, b: &RVal) -> RVal {
        match op {
            BinOp::Add => {
                if matches!(a, RVal::Str(_)) || matches!(b, RVal::Str(_)) {
                    RVal::Str(format!("{}{}", self.display(a), self.display(b)).into())
                } else {
                    RVal::Num(self.to_f64(a) + self.to_f64(b))
                }
            }
            BinOp::Sub => RVal::Num(self.to_f64(a) - self.to_f64(b)),
            BinOp::Mul => RVal::Num(self.to_f64(a) * self.to_f64(b)),
            BinOp::Div => RVal::Num(self.to_f64(a) / self.to_f64(b)),
            BinOp::Mod => RVal::Num(self.to_f64(a) % self.to_f64(b)),
            BinOp::BitAnd => RVal::Num((self.to_int32(a) & self.to_int32(b)) as f64),
            BinOp::BitOr => RVal::Num((self.to_int32(a) | self.to_int32(b)) as f64),
            BinOp::BitXor => RVal::Num((self.to_int32(a) ^ self.to_int32(b)) as f64),
            BinOp::Shl => RVal::Num((self.to_int32(a) << (self.to_uint32(b) & 31)) as f64),
            BinOp::Sar => RVal::Num((self.to_int32(a) >> (self.to_uint32(b) & 31)) as f64),
            BinOp::Shr => {
                RVal::Num(((self.to_int32(a) as u32) >> (self.to_uint32(b) & 31)) as f64)
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => RVal::Bool(self.compare(op, a, b)),
            BinOp::Eq => RVal::Bool(self.loose_eq(a, b)),
            BinOp::NotEq => RVal::Bool(!self.loose_eq(a, b)),
            BinOp::StrictEq => RVal::Bool(self.strict_eq(a, b)),
            BinOp::StrictNotEq => RVal::Bool(!self.strict_eq(a, b)),
        }
    }

    // ----- elements -----

    fn required_kind(v: &RVal) -> EKind {
        match v {
            RVal::Num(f) if f64_fits_smi(*f) => EKind::Smi,
            RVal::Num(_) => EKind::Double,
            _ => EKind::Tagged,
        }
    }

    /// Mirror of `Runtime::store_element`: kind transition (converting
    /// only `0..len`, refilling the rest), capacity growth (copying only
    /// `0..len`), length bump, and kind-directed slot representation.
    fn store_element(&mut self, obj: usize, index: i64, value: RVal) {
        assert!(index >= 0, "negative element index");
        let index = index as usize;
        let e = &mut self.objs[obj].elems;
        let want = EKind::join(e.kind, Interp::required_kind(&value));

        if want != e.kind {
            let cap = e.slots.len().max(index + 1).max(4);
            let mut slots = vec![RElems::fill(want); cap];
            slots[..e.len].clone_from_slice(&e.slots[..e.len]);
            e.kind = want;
            e.slots = slots;
        }
        if index >= e.slots.len() {
            let cap = (e.slots.len() * 2).max(index + 1).max(4);
            let mut slots = vec![RElems::fill(e.kind); cap];
            slots[..e.len].clone_from_slice(&e.slots[..e.len]);
            e.slots = slots;
        }
        if index >= e.len {
            e.len = index + 1;
        }
        e.slots[index] = match e.kind {
            EKind::Double => RVal::Num(self_to_f64_static(&value)),
            EKind::Smi | EKind::Tagged => value,
        };
    }

    fn load_element(&self, obj: usize, index: i64) -> RVal {
        let e = &self.objs[obj].elems;
        if index < 0 || index as usize >= e.len {
            return RVal::Undefined;
        }
        e.slots[index as usize].clone()
    }

    // ----- properties -----

    fn get_prop(&self, v: &RVal, name: &str) -> RResult<RVal> {
        match v {
            RVal::Obj(o) => {
                if let Some((_, pv)) = self.objs[*o].props.iter().find(|(n, _)| &**n == name) {
                    return Ok(pv.clone());
                }
                if name == "length" {
                    return Ok(RVal::Num(self.objs[*o].elems.len as u64 as i32 as f64));
                }
                Ok(RVal::Undefined)
            }
            RVal::Str(s) => {
                if name == "length" {
                    Ok(RVal::Num(s.len() as i32 as f64))
                } else {
                    Ok(RVal::Undefined)
                }
            }
            RVal::Null | RVal::Undefined => Err(format!(
                "cannot read property `{}` of {}",
                name,
                self.display(v)
            )),
            _ => Ok(RVal::Undefined),
        }
    }

    /// Mirror of `ip_set_prop`: silent on primitive receivers, errors on
    /// null/undefined, stores (adding the property) on objects.
    fn set_prop(&mut self, recv: &RVal, name: &str, value: RVal) -> RResult<()> {
        match recv {
            RVal::Obj(o) => {
                let o = *o;
                if let Some(slot) =
                    self.objs[o].props.iter_mut().find(|(n, _)| &**n == name)
                {
                    slot.1 = value;
                } else {
                    self.objs[o].props.push((name.into(), value));
                }
                Ok(())
            }
            RVal::Null | RVal::Undefined => Err(format!(
                "cannot set property `{}` of {}",
                name,
                self.display(recv)
            )),
            _ => Ok(()),
        }
    }

    /// Mirror of `integral_index`.
    fn integral_index(&self, v: &RVal) -> Option<i64> {
        if let RVal::Num(f) = v {
            if f64_fits_smi(*f) {
                return if *f >= 0.0 { Some(*f as i64) } else { None };
            }
            if f.trunc() == *f && (0.0..2_147_483_648.0).contains(f) {
                return Some(*f as i64);
            }
        }
        None
    }

    fn get_elem(&mut self, obj: &RVal, ix: &RVal) -> RResult<RVal> {
        match obj {
            // The engine only errors for SMI receivers; heap numbers fall
            // through to the generic "undefined" arm.
            RVal::Num(f) if f64_fits_smi(*f) => Err("cannot index a number".into()),
            RVal::Str(s) => Ok(match self.integral_index(ix) {
                Some(i) => RVal::Str(char_at(s, i)),
                None => RVal::Undefined,
            }),
            RVal::Obj(o) => Ok(match self.integral_index(ix) {
                Some(i) => self.load_element(*o, i),
                None => RVal::Undefined,
            }),
            RVal::Null | RVal::Undefined => Err("cannot index null/undefined".into()),
            _ => Ok(RVal::Undefined),
        }
    }

    fn set_elem(&mut self, obj: &RVal, ix: &RVal, value: RVal) -> RResult<()> {
        let RVal::Obj(o) = obj else {
            return Err("cannot index-assign a non-object".into());
        };
        if let Some(i) = self.integral_index(ix) {
            self.store_element(*o, i, value);
        }
        Ok(())
    }

    // ----- calls -----

    fn call_value(&mut self, callee: &RVal, this: RVal, args: Vec<RVal>) -> RResult<RVal> {
        let RVal::Func(f) = callee else {
            return Err("callee is not a function".into());
        };
        match *f {
            RFunc::Builtin(b) => self.call_builtin(b, this, &args),
            RFunc::User(ix) => {
                let decl = self.funcs[ix].clone();
                self.call_decl(&decl, this, &args, false)
            }
        }
    }

    /// Execute a user function (or, with `global_scope`, the program's
    /// top level): hoist `var`s and nested function declarations, bind
    /// parameters, run the body.
    fn call_decl(
        &mut self,
        decl: &Rc<FuncDecl>,
        this: RVal,
        args: &[RVal],
        global_scope: bool,
    ) -> RResult<RVal> {
        let limit = if cfg!(debug_assertions) { 120 } else { 800 };
        if self.depth >= limit {
            return Err("stack overflow".into());
        }
        self.depth += 1;
        let r = self.call_decl_inner(decl, this, args, global_scope);
        self.depth -= 1;
        r
    }

    fn call_decl_inner(
        &mut self,
        decl: &Rc<FuncDecl>,
        this: RVal,
        args: &[RVal],
        global_scope: bool,
    ) -> RResult<RVal> {
        let mut hoisted_vars = Vec::new();
        let mut hoisted_funcs = Vec::new();
        hoist(&decl.body, &mut hoisted_vars, &mut hoisted_funcs);

        let mut scope = if global_scope {
            Scope { locals: None, this }
        } else {
            let mut locals: HashMap<String, RVal> = HashMap::new();
            for (i, p) in decl.params.iter().enumerate() {
                locals.insert(
                    p.clone(),
                    args.get(i).cloned().unwrap_or(RVal::Undefined),
                );
            }
            for v in &hoisted_vars {
                locals.entry(v.clone()).or_insert(RVal::Undefined);
            }
            for (name, _) in &hoisted_funcs {
                locals.entry(name.clone()).or_insert(RVal::Undefined);
            }
            Scope { locals: Some(locals), this }
        };

        // Materialize hoisted function declarations at entry, in
        // hoist-traversal order.
        for (name, fdecl) in &hoisted_funcs {
            let ix = self.register(fdecl);
            self.store_var(&mut scope, name, RVal::Func(RFunc::User(ix)));
        }

        for s in &decl.body {
            match self.stmt(&mut scope, s)? {
                Flow::Return(v) => return Ok(v),
                Flow::Normal => {}
                Flow::Break | Flow::Continue => {
                    unreachable!("break/continue escaped a loop (parser bug)")
                }
            }
        }
        Ok(RVal::Undefined)
    }

    fn load_var(&self, scope: &Scope, name: &str) -> RVal {
        if let Some(locals) = &scope.locals {
            if let Some(v) = locals.get(name) {
                return v.clone();
            }
        }
        self.globals.get(name).cloned().unwrap_or(RVal::Undefined)
    }

    fn store_var(&mut self, scope: &mut Scope, name: &str, v: RVal) {
        if let Some(locals) = &mut scope.locals {
            if let Some(slot) = locals.get_mut(name) {
                *slot = v;
                return;
            }
        }
        self.globals.insert(name.to_string(), v);
    }

    // ----- statements -----

    /// Burn one unit of fuel; errors once [`REF_STEP_BUDGET`] is spent.
    fn tick(&mut self) -> RResult<()> {
        if self.steps == 0 {
            return Err("step budget exceeded".into());
        }
        self.steps -= 1;
        Ok(())
    }

    fn stmt(&mut self, scope: &mut Scope, s: &Stmt) -> RResult<Flow> {
        self.tick()?;
        match s {
            Stmt::Var { name, init } => {
                if let Some(e) = init {
                    let v = self.expr(scope, e)?;
                    self.store_var(scope, name, v);
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.expr(scope, e)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then, els } => {
                let c = self.expr(scope, cond)?;
                if self.is_truthy(&c) {
                    self.stmt(scope, then)
                } else if let Some(e) = els {
                    self.stmt(scope, e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                loop {
                    let c = self.expr(scope, cond)?;
                    if !self.is_truthy(&c) {
                        break;
                    }
                    match self.stmt(scope, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond } => {
                loop {
                    match self.stmt(scope, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    let c = self.expr(scope, cond)?;
                    if !self.is_truthy(&c) {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { init, cond, update, body } => {
                if let Some(i) = init {
                    match self.stmt(scope, i)? {
                        Flow::Normal => {}
                        _ => unreachable!("non-normal flow in for-init"),
                    }
                }
                loop {
                    if let Some(c) = cond {
                        let cv = self.expr(scope, c)?;
                        if !self.is_truthy(&cv) {
                            break;
                        }
                    }
                    match self.stmt(scope, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if let Some(u) = update {
                        self.expr(scope, u)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.expr(scope, e)?,
                    None => RVal::Undefined,
                };
                Ok(Flow::Return(v))
            }
            // Hoisted at entry; nothing at the declaration site.
            Stmt::Function(_) => Ok(Flow::Normal),
            Stmt::Block(b) => {
                for s in b {
                    match self.stmt(scope, s)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Empty => Ok(Flow::Normal),
        }
    }

    // ----- expressions -----

    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, scope: &mut Scope, e: &Expr) -> RResult<RVal> {
        self.tick()?;
        match e {
            Expr::Num(n) => Ok(RVal::Num(*n)),
            Expr::Str(s) => Ok(RVal::Str(s.clone())),
            Expr::Bool(b) => Ok(RVal::Bool(*b)),
            Expr::Null => Ok(RVal::Null),
            Expr::Undefined => Ok(RVal::Undefined),
            Expr::This => Ok(scope.this.clone()),
            Expr::Ident(name) => Ok(self.load_var(scope, name)),
            Expr::Assign { target, op, value } => self.assign(scope, target, *op, value),
            Expr::Binary { op, lhs, rhs } => {
                let a = self.expr(scope, lhs)?;
                let b = self.expr(scope, rhs)?;
                Ok(self.binop(*op, &a, &b))
            }
            Expr::Logical { op, lhs, rhs } => {
                let a = self.expr(scope, lhs)?;
                let take_lhs = match op {
                    LogOp::And => !self.is_truthy(&a),
                    LogOp::Or => self.is_truthy(&a),
                };
                if take_lhs {
                    Ok(a)
                } else {
                    self.expr(scope, rhs)
                }
            }
            Expr::Unary { op, expr } => {
                let v = self.expr(scope, expr)?;
                Ok(match op {
                    UnOp::Neg => RVal::Num(-self.to_f64(&v)),
                    // `+x` compiles to `x - 0`.
                    UnOp::Plus => RVal::Num(self.to_f64(&v) - 0.0),
                    UnOp::Not => RVal::Bool(!self.is_truthy(&v)),
                    UnOp::BitNot => RVal::Num(!self.to_int32(&v) as f64),
                })
            }
            Expr::Update { op, prefix, target } => {
                let bop = match op {
                    UpdateOp::Inc => BinOp::Add,
                    UpdateOp::Dec => BinOp::Sub,
                };
                if *prefix {
                    // ++x ≡ x += 1 (string `++` concatenates "1", like
                    // the engine's Add-based desugaring).
                    return self.assign_with(scope, target, Some(bop), &Expr::Num(1.0));
                }
                // Postfix: result is the old value.
                match &**target {
                    Expr::Ident(name) => {
                        let old = self.load_var(scope, name);
                        let new = self.binop(bop, &old, &RVal::Num(1.0));
                        self.store_var(scope, name, new);
                        Ok(old)
                    }
                    Expr::Member { obj, prop } => {
                        let o = self.expr(scope, obj)?;
                        let old = self.get_prop(&o, prop)?;
                        let new = self.binop(bop, &old, &RVal::Num(1.0));
                        self.set_prop(&o, prop, new)?;
                        Ok(old)
                    }
                    Expr::Index { obj, index } => {
                        let o = self.expr(scope, obj)?;
                        let i = self.expr(scope, index)?;
                        let old = self.get_elem(&o, &i)?;
                        let new = self.binop(bop, &old, &RVal::Num(1.0));
                        self.set_elem(&o, &i, new)?;
                        Ok(old)
                    }
                    other => unreachable!("invalid update target {other:?}"),
                }
            }
            Expr::Cond { cond, then, els } => {
                let c = self.expr(scope, cond)?;
                if self.is_truthy(&c) {
                    self.expr(scope, then)
                } else {
                    self.expr(scope, els)
                }
            }
            Expr::Call { callee, args } => match &**callee {
                Expr::Member { obj, prop } => {
                    let recv = self.expr(scope, obj)?;
                    let mut a = Vec::with_capacity(args.len());
                    for arg in args {
                        a.push(self.expr(scope, arg)?);
                    }
                    self.call_method(&recv, prop, a)
                }
                other => {
                    let f = self.expr(scope, other)?;
                    let mut a = Vec::with_capacity(args.len());
                    for arg in args {
                        a.push(self.expr(scope, arg)?);
                    }
                    self.call_value(&f, RVal::Undefined, a)
                }
            },
            Expr::New { callee, args } => {
                let f = self.expr(scope, callee)?;
                let mut a = Vec::with_capacity(args.len());
                for arg in args {
                    a.push(self.expr(scope, arg)?);
                }
                let RVal::Func(rf) = f else {
                    return Err("`new` target is not a function".into());
                };
                let RFunc::User(fi) = rf else {
                    return Err("builtins are not constructors".into());
                };
                // Allocation-site feedback: start at the constructor's
                // learned elements kind (hole fills differ by kind).
                let obj = self.alloc(self.ctor_kind[fi]);
                let decl = self.funcs[fi].clone();
                let ret = self.call_decl(&decl, RVal::Obj(obj), &a, false)?;
                let kind = self.objs[obj].elems.kind;
                self.ctor_kind[fi] = EKind::join(self.ctor_kind[fi], kind);
                if let RVal::Obj(_) = ret {
                    Ok(ret)
                } else {
                    Ok(RVal::Obj(obj))
                }
            }
            Expr::Member { obj, prop } => {
                let o = self.expr(scope, obj)?;
                self.get_prop(&o, prop)
            }
            Expr::Index { obj, index } => {
                let o = self.expr(scope, obj)?;
                let i = self.expr(scope, index)?;
                self.get_elem(&o, &i)
            }
            Expr::Array(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for it in items {
                    vals.push(self.expr(scope, it)?);
                }
                let arr = self.alloc(EKind::Smi);
                for (i, v) in vals.into_iter().enumerate() {
                    self.store_element(arr, i as i64, v);
                }
                Ok(RVal::Obj(arr))
            }
            Expr::Object(props) => {
                let o = self.alloc(EKind::Smi);
                for (k, v) in props {
                    let val = self.expr(scope, v)?;
                    self.set_prop(&RVal::Obj(o), k, val)?;
                }
                Ok(RVal::Obj(o))
            }
            Expr::Function(decl) => {
                let ix = self.register(decl);
                Ok(RVal::Func(RFunc::User(ix)))
            }
        }
    }

    fn assign(
        &mut self,
        scope: &mut Scope,
        target: &Expr,
        op: Option<BinOp>,
        value: &Expr,
    ) -> RResult<RVal> {
        self.assign_with(scope, target, op, value)
    }

    /// Assignment and compound assignment, mirroring the compiler's
    /// evaluation order: for compound member/index targets the old value
    /// is loaded (and may error) *before* the right-hand side runs.
    fn assign_with(
        &mut self,
        scope: &mut Scope,
        target: &Expr,
        op: Option<BinOp>,
        value: &Expr,
    ) -> RResult<RVal> {
        match target {
            Expr::Ident(name) => {
                let r = match op {
                    Some(op) => {
                        let old = self.load_var(scope, name);
                        let v = self.expr(scope, value)?;
                        self.binop(op, &old, &v)
                    }
                    None => self.expr(scope, value)?,
                };
                self.store_var(scope, name, r.clone());
                Ok(r)
            }
            Expr::Member { obj, prop } => {
                let o = self.expr(scope, obj)?;
                let r = match op {
                    Some(op) => {
                        let old = self.get_prop(&o, prop)?;
                        let v = self.expr(scope, value)?;
                        self.binop(op, &old, &v)
                    }
                    None => self.expr(scope, value)?,
                };
                self.set_prop(&o, prop, r.clone())?;
                Ok(r)
            }
            Expr::Index { obj, index } => {
                let o = self.expr(scope, obj)?;
                let i = self.expr(scope, index)?;
                let r = match op {
                    Some(op) => {
                        let old = self.get_elem(&o, &i)?;
                        let v = self.expr(scope, value)?;
                        self.binop(op, &old, &v)
                    }
                    None => self.expr(scope, value)?,
                };
                self.set_elem(&o, &i, r.clone())?;
                Ok(r)
            }
            other => unreachable!("invalid assignment target {other:?}"),
        }
    }

    fn call_method(&mut self, recv: &RVal, name: &str, args: Vec<RVal>) -> RResult<RVal> {
        match recv {
            RVal::Str(s) => {
                let s = s.clone();
                match name {
                    "charCodeAt" => Ok(self.char_code_at(&s, &args)),
                    "charAt" => {
                        let i = self.to_f64(args.first().unwrap_or(&RVal::Undefined)) as i64;
                        Ok(RVal::Str(char_at(&s, i)))
                    }
                    "substring" => Ok(self.substring(&s, &args)),
                    "indexOf" => Ok(self.index_of(&s, &args)),
                    other => Err(format!("string has no method `{other}`")),
                }
            }
            RVal::Obj(o) => {
                let o = *o;
                // Named properties shadow the builtin array methods.
                if let Some((_, pv)) =
                    self.objs[o].props.iter().find(|(n, _)| &**n == name)
                {
                    let callee = pv.clone();
                    return self.call_value(&callee, RVal::Obj(o), args);
                }
                match name {
                    "push" => {
                        let mut len = self.objs[o].elems.len;
                        for a in args {
                            self.store_element(o, len as i64, a);
                            len += 1;
                        }
                        Ok(RVal::Num(len as u64 as i32 as f64))
                    }
                    "pop" => {
                        let len = self.objs[o].elems.len;
                        if len == 0 {
                            return Ok(RVal::Undefined);
                        }
                        let v = self.load_element(o, len as i64 - 1);
                        // Length shrinks; the slot keeps its stale value
                        // (observable on a later in-capacity store).
                        self.objs[o].elems.len = len - 1;
                        Ok(v)
                    }
                    other => Err(format!("object has no method `{other}`")),
                }
            }
            _ => Err("method call on non-object".into()),
        }
    }

    // ----- builtins -----

    fn num_arg(&self, args: &[RVal], i: usize) -> f64 {
        self.to_f64(args.get(i).unwrap_or(&RVal::Undefined))
    }

    fn call_builtin(&mut self, b: RBuiltin, _this: RVal, args: &[RVal]) -> RResult<RVal> {
        use RBuiltin::*;
        Ok(match b {
            Sqrt => RVal::Num(self.num_arg(args, 0).sqrt()),
            Abs => RVal::Num(self.num_arg(args, 0).abs()),
            Floor => RVal::Num(self.num_arg(args, 0).floor()),
            Ceil => RVal::Num(self.num_arg(args, 0).ceil()),
            // JS Math.round: floor(x + 0.5), as in the engine.
            Round => RVal::Num((self.num_arg(args, 0) + 0.5).floor()),
            Sin => RVal::Num(self.num_arg(args, 0).sin()),
            Cos => RVal::Num(self.num_arg(args, 0).cos()),
            Tan => RVal::Num(self.num_arg(args, 0).tan()),
            Atan => RVal::Num(self.num_arg(args, 0).atan()),
            Atan2 => RVal::Num(self.num_arg(args, 0).atan2(self.num_arg(args, 1))),
            Pow => RVal::Num(self.num_arg(args, 0).powf(self.num_arg(args, 1))),
            Exp => RVal::Num(self.num_arg(args, 0).exp()),
            Log => RVal::Num(self.num_arg(args, 0).ln()),
            Min => {
                let mut best = f64::INFINITY;
                for i in 0..args.len() {
                    let v = self.num_arg(args, i);
                    if v.is_nan() {
                        return Ok(RVal::Num(f64::NAN));
                    }
                    if v < best {
                        best = v;
                    }
                }
                RVal::Num(best)
            }
            Max => {
                let mut best = f64::NEG_INFINITY;
                for i in 0..args.len() {
                    let v = self.num_arg(args, i);
                    if v.is_nan() {
                        return Ok(RVal::Num(f64::NAN));
                    }
                    if v > best {
                        best = v;
                    }
                }
                RVal::Num(best)
            }
            Random => {
                // xorshift64*, identical stream to Runtime::random_f64.
                let mut x = self.prng;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                self.prng = x;
                let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
                RVal::Num((bits >> 11) as f64 / (1u64 << 53) as f64)
            }
            FromCharCode => {
                let mut s = String::new();
                for i in 0..args.len() {
                    s.push(self.num_arg(args, i) as u32 as u8 as char);
                }
                RVal::Str(s.into())
            }
            Print => {
                let parts: Vec<String> = args.iter().map(|a| self.display(a)).collect();
                self.output.push(parts.join(" "));
                RVal::Undefined
            }
            ParseInt => {
                let s = self.display(args.first().unwrap_or(&RVal::Undefined));
                let radix = if args.len() > 1 { self.num_arg(args, 1) as u32 } else { 10 };
                parse_int(&s, radix)
            }
            ParseFloat => {
                let s = self.display(args.first().unwrap_or(&RVal::Undefined));
                parse_float(&s)
            }
        })
    }

    fn char_code_at(&self, s: &str, args: &[RVal]) -> RVal {
        // `num_arg as i64` in the engine: NaN saturates to 0.
        let i = self.num_arg(args, 0) as i64;
        let bytes = s.as_bytes();
        if i < 0 || i as usize >= bytes.len() {
            RVal::Num(f64::NAN)
        } else {
            RVal::Num(bytes[i as usize] as f64)
        }
    }

    fn substring(&self, s: &str, args: &[RVal]) -> RVal {
        let len = s.len() as i64;
        let a = (self.num_arg(args, 0) as i64).clamp(0, len);
        let b = if args.len() > 1 { (self.num_arg(args, 1) as i64).clamp(0, len) } else { len };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        RVal::Str(s[lo as usize..hi as usize].into())
    }

    fn index_of(&self, s: &str, args: &[RVal]) -> RVal {
        let needle = self.display(args.first().unwrap_or(&RVal::Undefined));
        let from = if args.len() > 1 { self.num_arg(args, 1) as usize } else { 0 };
        let r = if from <= s.len() {
            s[from..].find(&needle).map(|p| (p + from) as i32).unwrap_or(-1)
        } else {
            -1
        };
        RVal::Num(r as f64)
    }
}

/// Standalone `ToNumber` used where borrowing `self` is inconvenient.
/// Matches `Interp::to_f64` (only called on values already stored in
/// elements, which never need the interner).
fn self_to_f64_static(v: &RVal) -> f64 {
    match v {
        RVal::Num(f) => *f,
        RVal::Bool(b) => *b as u32 as f64,
        RVal::Null => 0.0,
        RVal::Undefined => f64::NAN,
        RVal::Str(s) => {
            let t = s.trim();
            if t.is_empty() {
                0.0
            } else {
                t.parse::<f64>().unwrap_or(f64::NAN)
            }
        }
        RVal::Func(_) | RVal::Obj(_) => f64::NAN,
    }
}

fn char_at(s: &str, i: i64) -> Rc<str> {
    if i < 0 || i as usize >= s.len() {
        "".into()
    } else {
        s[i as usize..i as usize + 1].into()
    }
}

fn parse_int(s: &str, radix: u32) -> RVal {
    let t = s.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let (radix, t) = if radix == 16 || (radix == 10 && t.starts_with("0x")) {
        (16, t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")).unwrap_or(t))
    } else {
        (radix.clamp(2, 36), t)
    };
    let digits: String = t.chars().take_while(|c| c.is_digit(radix)).collect();
    if digits.is_empty() {
        return RVal::Num(f64::NAN);
    }
    let mut v = 0f64;
    for c in digits.chars() {
        v = v * radix as f64 + c.to_digit(radix).unwrap() as f64;
    }
    RVal::Num(if neg { -v } else { v })
}

fn parse_float(s: &str) -> RVal {
    let t = s.trim();
    let mut end = 0;
    for i in (0..=t.len()).rev() {
        if t[..i].parse::<f64>().is_ok() {
            end = i;
            break;
        }
    }
    if end == 0 {
        RVal::Num(f64::NAN)
    } else {
        RVal::Num(t[..end].parse::<f64>().unwrap())
    }
}

/// Hoist `var` names and nested function declarations in the same
/// traversal order as the bytecode compiler's `hoist_stmt`.
fn hoist(body: &[Stmt], vars: &mut Vec<String>, funcs: &mut Vec<(String, Rc<FuncDecl>)>) {
    for s in body {
        hoist_stmt(s, vars, funcs);
    }
}

fn hoist_stmt(s: &Stmt, vars: &mut Vec<String>, funcs: &mut Vec<(String, Rc<FuncDecl>)>) {
    match s {
        Stmt::Var { name, .. } => vars.push(name.clone()),
        Stmt::Function(decl) => funcs.push((decl.name.clone(), decl.clone())),
        Stmt::If { then, els, .. } => {
            hoist_stmt(then, vars, funcs);
            if let Some(e) = els {
                hoist_stmt(e, vars, funcs);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => hoist_stmt(body, vars, funcs),
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                hoist_stmt(i, vars, funcs);
            }
            hoist_stmt(body, vars, funcs);
        }
        Stmt::Block(b) => hoist(b, vars, funcs),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> RefOutput {
        run_reference(src)
    }

    fn value(src: &str) -> String {
        run(src).result.expect("program should succeed")
    }

    fn error(src: &str) -> String {
        run(src).result.expect_err("program should fail")
    }

    #[test]
    fn arithmetic_and_display() {
        assert_eq!(value("return 1 + 2 * 3;"), "7");
        assert_eq!(value("return 7 / 2;"), "3.5");
        assert_eq!(value("return -6 % 3;"), "0");
        assert_eq!(value("return 1 / 0;"), "Infinity");
        assert_eq!(value("return 0 / 0;"), "NaN");
        assert_eq!(value("return \"a\" + 1;"), "a1");
        assert_eq!(value("return 1 + \"a\";"), "1a");
        assert_eq!(value("return true + 1;"), "2");
        assert_eq!(value("return {} + 1;"), "NaN");
    }

    #[test]
    fn equality_matrix() {
        assert_eq!(value("return null == undefined;"), "true");
        assert_eq!(value("return null === undefined;"), "false");
        assert_eq!(value("return \"3\" == 3;"), "true");
        assert_eq!(value("return \"3\" === 3;"), "false");
        // njs quirk: null coerces to 0 in the numeric arm.
        assert_eq!(value("return null == 0;"), "true");
        assert_eq!(value("return undefined == 0;"), "false");
        let two_objects = "var a = {}; var b = {}; return a == b;";
        assert_eq!(value(two_objects), "false");
        assert_eq!(value("var a = {}; var b = a; return a === b;"), "true");
    }

    #[test]
    fn elements_holes_are_kind_dependent() {
        // SMI store past the end: holes read 0.
        assert_eq!(value("var a = []; a[3] = 7; return a[1];"), "0");
        // Tagged store past the end: holes read undefined.
        assert_eq!(value("var a = []; a[3] = \"s\"; return a[1];"), "undefined");
        // Double array: holes read 0.
        assert_eq!(value("var a = []; a[3] = 1.5; return a[1];"), "0");
        // Transition converts only the live prefix.
        assert_eq!(
            value("var a = [1, 2]; a[5] = 1.5; return a[0] + a[3];"),
            "1"
        );
    }

    #[test]
    fn pop_resurrects_stale_slots() {
        // pop leaves the slot value in place; a later in-capacity store
        // that bumps the length back re-exposes it.
        assert_eq!(
            value("var a = [1, 2, 3]; a.pop(); a[3] = 9; return a[2];"),
            "3"
        );
    }

    #[test]
    fn allocation_site_feedback_changes_hole_fill() {
        // First instance goes Tagged; the second *starts* Tagged, so its
        // sparse-store holes read undefined, not 0.
        let src = "function C() { this.a = []; this.a[0] = \"s\"; }
                   var x = new C();
                   var y = new C();
                   var z = new C();
                   z.a[2] = 1;
                   return z.a[1];";
        // z's own constructor stores \"s\" into z.a[0], so z.a is Tagged
        // before the sparse store: the hole reads undefined.
        assert_eq!(value(src), "undefined");

        // Feedback on the constructed object itself.
        let src2 = "function C(v) { this[0] = v; }
                    var x = new C(\"s\");
                    var y = new C(1);
                    y[2] = 1;
                    return y[1];";
        // x reached Tagged, so y starts Tagged: hole is undefined.
        assert_eq!(value(src2), "undefined");
    }

    #[test]
    fn smi_heap_split_in_get_elem() {
        assert_eq!(error("var x = 2; return x[0];"), "cannot index a number");
        // Non-SMI numbers fall through to undefined.
        assert_eq!(value("var x = 2.5; return x[0];"), "undefined");
    }

    #[test]
    fn error_messages_match_engine() {
        assert_eq!(error("var o = null; return o.x;"), "cannot read property `x` of null");
        assert_eq!(
            error("var o; return o.x;"),
            "cannot read property `x` of undefined"
        );
        assert_eq!(error("var o = null; o.x = 1;"), "cannot set property `x` of null");
        assert_eq!(error("return null[0];"), "cannot index null/undefined");
        assert_eq!(error("var x = 1; x[0] = 2;"), "cannot index-assign a non-object");
        assert_eq!(error("var f = 3; f();"), "callee is not a function");
        assert_eq!(error("new Math.sqrt();"), "builtins are not constructors");
        assert_eq!(error("var s = \"x\"; s.zap();"), "string has no method `zap`");
        assert_eq!(error("var o = {}; o.zap();"), "object has no method `zap`");
        assert_eq!(error("var n = 1; n.zap();"), "method call on non-object");
        assert_eq!(error("new 3();"), "`new` target is not a function");
    }

    #[test]
    fn hoisting_and_scopes() {
        // Function declarations are usable before their site.
        assert_eq!(value("return f(); function f() { return 4; }"), "4");
        // `var` in a function is function-scoped even inside blocks.
        assert_eq!(
            value("function g() { if (true) { var x = 3; } return x; } return g();"),
            "3"
        );
        // Undeclared identifiers read undefined, assignment creates a
        // global visible across functions.
        assert_eq!(value("function s() { q = 8; } s(); return q;"), "8");
        assert_eq!(value("return nothing_here;"), "undefined");
    }

    #[test]
    fn update_and_compound_semantics() {
        assert_eq!(value("var x = 3; var y = x++; return x * 10 + y;"), "43");
        assert_eq!(value("var x = 3; var y = ++x; return x * 10 + y;"), "44");
        // String ++ concatenates "1" (Add-based desugaring).
        assert_eq!(value("var s = \"a\"; s++; return s;"), "a1");
        // But -- coerces numerically.
        assert_eq!(value("var s = \"3\"; s--; return s;"), "2");
        // Compound index assign reads the old value before the RHS.
        assert_eq!(value("var a = [5]; a[0] += 2; return a[0];"), "7");
    }

    #[test]
    fn builtins_quirks() {
        assert_eq!(value("return Math.round(-0.5);"), "0");
        assert_eq!(value("return Math.round(2.5);"), "3");
        assert_eq!(value("return parseInt(\"0xff\");"), "255");
        assert_eq!(value("return parseInt(\"42px\");"), "42");
        assert_eq!(value("return parseFloat(\"3.5rest\");"), "3.5");
        assert_eq!(value("return \"hello\".charCodeAt(1);"), "101");
        assert_eq!(value("return \"hello\".substring(3, 1);"), "el");
        assert_eq!(value("return \"hello\".indexOf(\"lo\");"), "3");
        assert_eq!(value("return String.fromCharCode(104, 105);"), "hi");
        // Math members are plain mutable properties.
        assert_eq!(
            value("Math.sqrt = function(x) { return 99; }; return Math.sqrt(4);"),
            "99"
        );
        // Builtin identity is stable.
        assert_eq!(value("return Math.abs === Math.abs;"), "true");
    }

    #[test]
    fn array_methods_and_length() {
        assert_eq!(value("var a = []; return a.push(1, 2);"), "2");
        assert_eq!(value("var a = [1, 2, 3]; a.pop(); return a.length;"), "2");
        assert_eq!(value("var a = []; a[9] = 1; return a.length;"), "10");
        assert_eq!(value("return \"abc\".length;"), "3");
        // A named property shadows the builtin and the length fallback.
        assert_eq!(
            value("var a = [1]; a.push = function() { return 7; }; return a.push(9);"),
            "7"
        );
        assert_eq!(value("var o = {}; o.length = 5; return o.length;"), "5");
    }

    #[test]
    fn print_and_output_order() {
        let out = run("print(\"x =\", 3); print([1][0]); print({});");
        assert_eq!(out.output, vec!["x = 3", "1", "[object Object]"]);
    }

    #[test]
    fn math_random_stream_matches_engine_seed() {
        // Fixed seed: the first draw of the xorshift64* stream.
        let out = run("var r = Math.random(); return r > 0 && r < 1;");
        assert_eq!(out.result.unwrap(), "true");
    }

    #[test]
    fn stack_overflow_guard() {
        assert_eq!(
            error("function f() { return f(); } return f();"),
            "stack overflow"
        );
    }

    #[test]
    fn constructor_return_override() {
        assert_eq!(
            value("function C() { this.a = 1; return { b: 9 }; } return (new C()).b;"),
            "9"
        );
        assert_eq!(
            value("function C() { this.a = 1; return 5; } return (new C()).a;"),
            "1"
        );
    }
}

//! Reproducer minimization.
//!
//! Given a failing program and an oracle (`still_fails`), [`shrink_source`]
//! greedily reduces the program while the oracle keeps failing:
//!
//! 1. **statement deletion** — every statement position (at any nesting
//!    depth, including inside function declarations) is a removal
//!    candidate; positions held by a `Box<Stmt>` (loop bodies, `if`
//!    branches) are replaced by the empty statement;
//! 2. **statement unwrapping** — loops are replaced by one copy of their
//!    body, `if` statements by their then-branch, blocks by their
//!    contents; this peels control structure that deletion alone cannot
//!    remove without losing the interesting statements inside;
//! 3. **loop unrolling** — a loop is replaced by *three* copies of its
//!    body (with the `for` update between them). This temporarily grows
//!    the program, but a warm-up loop whose only job is to cross
//!    `opt_threshold` then collapses to a couple of bare calls under the
//!    deletion passes — the step that takes reproducers below the loop
//!    scaffold's ~40-node floor;
//! 4. **expression edits** — any expression is replaced by one of its
//!    direct children (`(a + b)` → `a`, `f(x)` → `x`, `o.p` → `o`), a
//!    call argument is dropped, or a subexpression is replaced by `0`;
//!    neither statement deletion nor literal reduction can simplify
//!    *inside* an expression that must stay;
//! 5. **literal reduction** — numeric literals step toward zero by
//!    halving (which also shrinks loop trip counts), strings collapse to
//!    `""`.
//!
//! Each pass restarts after a successful reduction and the whole cycle
//! repeats to a fixpoint or until the oracle-invocation budget
//! ([`ShrinkOptions::max_checks`]) is exhausted. Because unrolling can
//! grow a candidate, the driver tracks the smallest validated form ever
//! seen and returns that. Candidates are rendered through the
//! `checkelide-lang` pretty-printer before being tested, so the returned
//! reproducer is exactly what was validated.

use checkelide_lang::{node_count, parse_program, print_program, Expr, FuncDecl, Program, Stmt};
use std::rc::Rc;

/// Shrinking limits.
#[derive(Debug, Clone)]
pub struct ShrinkOptions {
    /// Maximum number of `still_fails` invocations.
    pub max_checks: usize,
}

impl Default for ShrinkOptions {
    fn default() -> Self {
        ShrinkOptions { max_checks: 2000 }
    }
}

/// Reduce `src` while `still_fails` keeps returning `true`.
///
/// Returns the pretty-printed minimal form, or `src` unchanged when it
/// does not parse or the normalized form no longer fails.
pub fn shrink_source(
    src: &str,
    opts: &ShrinkOptions,
    still_fails: &mut dyn FnMut(&str) -> bool,
) -> String {
    let Ok(cur) = parse_program(src) else {
        return src.to_string();
    };
    let mut budget = opts.max_checks;

    // The oracle must fail on the *normalized* form, otherwise every
    // candidate comparison would be against a different baseline.
    let cur_src = print_program(&cur);
    if budget == 0 {
        return cur_src;
    }
    budget -= 1;
    if !still_fails(&cur_src) {
        return src.to_string();
    }

    let mut st = Driver {
        best_src: cur_src.clone(),
        best_nodes: node_count(&cur),
        cur,
        cur_src,
        budget,
        improved: false,
    };

    loop {
        st.improved = false;

        for action in [Action::Delete, Action::Unwrap] {
            st.stmt_pass(action, still_fails);
        }
        st.expr_pass(still_fails);
        st.literal_pass(still_fails);
        // Unrolling grows the candidate; run it only once the cheap
        // passes are at a fixpoint, so the growth is immediately
        // attacked by the next cycle.
        st.stmt_pass(Action::Unroll, still_fails);

        if !st.improved || st.budget == 0 {
            break;
        }
    }

    st.best_src
}

/// Mutable state threaded through the shrink passes.
struct Driver {
    cur: Program,
    cur_src: String,
    /// Smallest *validated* form seen so far (unrolling can grow `cur`
    /// past it).
    best_src: String,
    best_nodes: usize,
    budget: usize,
    improved: bool,
}

impl Driver {
    /// Accept `cand` (already validated) as the current form.
    fn accept(&mut self, cand: Program, s: String) {
        let nodes = node_count(&cand);
        if nodes < self.best_nodes {
            self.best_nodes = nodes;
            self.best_src = s.clone();
        }
        self.cur = cand;
        self.cur_src = s;
        self.improved = true;
    }

    /// One statement-level pass, restarting after each hit (indices
    /// shift under edits).
    fn stmt_pass(&mut self, action: Action, still_fails: &mut dyn FnMut(&str) -> bool) {
        loop {
            let n = count_stmts(&self.cur);
            let mut hit = false;
            for k in 0..n {
                if self.budget == 0 {
                    break;
                }
                let Some(cand) = edit_program(&self.cur, k, action) else { continue };
                let s = print_program(&cand);
                if s == self.cur_src {
                    // Structurally different but observably identical
                    // (e.g. an `Empty` dropped from a block): taking it
                    // re-tests nothing, so treat it as free progress
                    // without consulting the oracle.
                    self.cur = cand;
                    continue;
                }
                self.budget -= 1;
                if still_fails(&s) {
                    self.accept(cand, s);
                    hit = true;
                    break;
                }
            }
            if !hit || self.budget == 0 {
                break;
            }
        }
    }

    /// One expression-level pass: hoist a child, drop a call argument,
    /// or replace a subexpression with `0`.
    fn expr_pass(&mut self, still_fails: &mut dyn FnMut(&str) -> bool) {
        loop {
            let n = count_exprs(&self.cur);
            let mut hit = false;
            'outer: for k in 0..n {
                let edits = (0..MAX_HOIST_CHILDREN)
                    .map(ExprEdit::Hoist)
                    .chain((0..MAX_HOIST_CHILDREN).map(ExprEdit::DropArg))
                    .chain(std::iter::once(ExprEdit::Zero));
                for edit in edits {
                    if self.budget == 0 {
                        break 'outer;
                    }
                    let Some(cand) = edit_expr(&self.cur, k, edit) else { continue };
                    let s = print_program(&cand);
                    if s == self.cur_src {
                        continue;
                    }
                    self.budget -= 1;
                    if still_fails(&s) {
                        self.accept(cand, s);
                        hit = true;
                        break 'outer;
                    }
                }
            }
            if !hit || self.budget == 0 {
                break;
            }
        }
    }

    /// One literal-reduction pass.
    fn literal_pass(&mut self, still_fails: &mut dyn FnMut(&str) -> bool) {
        loop {
            let n = count_literals(&self.cur);
            let mut hit = false;
            'outer: for k in 0..n {
                for edit in [LitEdit::Zero, LitEdit::Half, LitEdit::Empty] {
                    if self.budget == 0 {
                        break 'outer;
                    }
                    let Some(cand) = edit_literal(&self.cur, k, edit) else { continue };
                    let s = print_program(&cand);
                    if s == self.cur_src {
                        continue;
                    }
                    self.budget -= 1;
                    if still_fails(&s) {
                        self.accept(cand, s);
                        hit = true;
                        break 'outer;
                    }
                }
            }
            if !hit || self.budget == 0 {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Statement edits
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Remove the statement (empty statement at `Box<Stmt>` positions).
    Delete,
    /// Replace the statement with its structural children.
    Unwrap,
    /// Replace a loop with three copies of its body (`for` updates
    /// interleaved, init kept) — enough iterations to cross the
    /// differential configs' `opt_threshold = 2` without the loop.
    Unroll,
}

/// Preorder statement count, matching [`edit_program`]'s traversal.
fn count_stmts(p: &Program) -> usize {
    fn vec(stmts: &[Stmt]) -> usize {
        stmts.iter().map(one).sum()
    }
    fn one(s: &Stmt) -> usize {
        1 + match s {
            Stmt::If { then, els, .. } => {
                one(then) + els.as_deref().map_or(0, one)
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => one(body),
            Stmt::For { init, body, .. } => init.as_deref().map_or(0, one) + one(body),
            Stmt::Function(f) => vec(&f.body),
            Stmt::Block(b) => vec(b),
            _ => 0,
        }
    }
    vec(&p.body)
}

/// Apply `action` to the `target`-th statement (preorder); `None` when
/// the action does not apply there (e.g. unwrapping a `var`).
fn edit_program(p: &Program, target: usize, action: Action) -> Option<Program> {
    let mut counter = 0usize;
    let mut changed = false;
    let body = edit_vec(&p.body, &mut counter, target, action, &mut changed);
    changed.then_some(Program { body })
}

/// The structural children a statement unwraps to, if any.
fn unwrap_stmt(s: &Stmt) -> Option<Vec<Stmt>> {
    match s {
        Stmt::Block(b) => Some(b.clone()),
        Stmt::If { then, .. } => Some(vec![(**then).clone()]),
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
            Some(vec![(**body).clone()])
        }
        _ => None,
    }
}

/// Three copies of a loop body (`for` init first, update between
/// copies), or `None` for non-loops.
fn unroll_stmt(s: &Stmt) -> Option<Vec<Stmt>> {
    match s {
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
            Some(vec![(**body).clone(), (**body).clone(), (**body).clone()])
        }
        Stmt::For { init, update, body, .. } => {
            let mut out = Vec::new();
            if let Some(i) = init {
                out.push((**i).clone());
            }
            for copy in 0..3 {
                if copy > 0 {
                    if let Some(u) = update {
                        out.push(Stmt::Expr(u.clone()));
                    }
                }
                out.push((**body).clone());
            }
            Some(out)
        }
        _ => None,
    }
}

/// The statements `s` expands to under an [`Action`], if any.
fn expand_stmt(s: &Stmt, action: Action) -> Option<Vec<Stmt>> {
    match action {
        Action::Unwrap => unwrap_stmt(s),
        Action::Unroll => unroll_stmt(s),
        Action::Delete => None,
    }
}

fn edit_vec(
    stmts: &[Stmt],
    counter: &mut usize,
    target: usize,
    action: Action,
    changed: &mut bool,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        let my = *counter;
        *counter += 1;
        if my == target {
            if action == Action::Delete {
                *changed = true;
                continue;
            }
            if let Some(kids) = expand_stmt(s, action) {
                *changed = true;
                out.extend(kids);
                continue;
            }
        }
        out.push(edit_children(s, counter, target, action, changed));
    }
    out
}

/// Edit a statement held in a `Box<Stmt>` position: deletion yields the
/// empty statement, unwrapping a single-statement block.
fn edit_boxed(
    s: &Stmt,
    counter: &mut usize,
    target: usize,
    action: Action,
    changed: &mut bool,
) -> Stmt {
    let my = *counter;
    *counter += 1;
    if my == target {
        match action {
            // Deleting an already-empty statement would "succeed" while
            // producing an identical program — an infinite shrink loop.
            Action::Delete if !matches!(s, Stmt::Empty) => {
                *changed = true;
                return Stmt::Empty;
            }
            Action::Delete => {}
            Action::Unwrap | Action::Unroll => {
                if let Some(kids) = expand_stmt(s, action) {
                    *changed = true;
                    return Stmt::Block(kids);
                }
            }
        }
    }
    edit_children(s, counter, target, action, changed)
}

/// Recurse into the statement's children without editing the statement
/// itself.
fn edit_children(
    s: &Stmt,
    counter: &mut usize,
    target: usize,
    action: Action,
    changed: &mut bool,
) -> Stmt {
    match s {
        Stmt::If { cond, then, els } => Stmt::If {
            cond: cond.clone(),
            then: Box::new(edit_boxed(then, counter, target, action, changed)),
            els: els
                .as_deref()
                .map(|e| Box::new(edit_boxed(e, counter, target, action, changed))),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: cond.clone(),
            body: Box::new(edit_boxed(body, counter, target, action, changed)),
        },
        Stmt::DoWhile { body, cond } => Stmt::DoWhile {
            body: Box::new(edit_boxed(body, counter, target, action, changed)),
            cond: cond.clone(),
        },
        Stmt::For { init, cond, update, body } => Stmt::For {
            init: init
                .as_deref()
                .map(|i| Box::new(edit_boxed(i, counter, target, action, changed))),
            cond: cond.clone(),
            update: update.clone(),
            body: Box::new(edit_boxed(body, counter, target, action, changed)),
        },
        Stmt::Function(f) => Stmt::Function(Rc::new(FuncDecl {
            name: f.name.clone(),
            params: f.params.clone(),
            body: edit_vec(&f.body, counter, target, action, changed),
            line: f.line,
        })),
        Stmt::Block(b) => Stmt::Block(edit_vec(b, counter, target, action, changed)),
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------------
// Expression edits
// ---------------------------------------------------------------------------

/// Upper bound on direct expression children tried per position (calls
/// can have more arguments, but the generator caps at three and hoisting
/// any one of them already removes the call node).
const MAX_HOIST_CHILDREN: usize = 3;

/// One expression-level reduction at a preorder expression position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExprEdit {
    /// Replace the expression with its n-th direct child.
    Hoist(usize),
    /// Remove the n-th argument of a call / `new`.
    DropArg(usize),
    /// Replace the expression with the literal `0`.
    Zero,
}

/// Preorder count of every expression, matching [`edit_hoist`]'s
/// traversal.
fn count_exprs(p: &Program) -> usize {
    let mut n = 0usize;
    walk_program(p, &mut |_| n += 1);
    n
}

/// The direct children an expression may be replaced by. Lvalue
/// positions (`Assign`/`Update` targets) are excluded: hoisting the
/// target of `(a = b)` would just produce `a`, losing the side effect
/// the oracle likely depends on, while hoisting the *value* keeps it.
fn hoist_children(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Assign { value, .. } => vec![(**value).clone()],
        Expr::Binary { lhs, rhs, .. } | Expr::Logical { lhs, rhs, .. } => {
            vec![(**lhs).clone(), (**rhs).clone()]
        }
        Expr::Unary { expr, .. } => vec![(**expr).clone()],
        Expr::Update { target, .. } => vec![(**target).clone()],
        Expr::Cond { cond, then, els } => {
            vec![(**then).clone(), (**els).clone(), (**cond).clone()]
        }
        Expr::Call { args, .. } | Expr::New { args, .. } => args.clone(),
        Expr::Member { obj, .. } => vec![(**obj).clone()],
        Expr::Index { obj, index } => vec![(**obj).clone(), (**index).clone()],
        Expr::Array(items) => items.clone(),
        _ => Vec::new(),
    }
}

/// Apply `edit` to the `target`-th expression (preorder); `None` when
/// the edit does not apply there.
fn edit_expr(p: &Program, target: usize, edit: ExprEdit) -> Option<Program> {
    let mut counter = 0usize;
    let mut changed = false;
    let mut map = |e: &Expr, counter: &mut usize, changed: &mut bool| -> Option<Expr> {
        let my = *counter;
        *counter += 1;
        if my != target {
            return None;
        }
        let repl = match edit {
            ExprEdit::Hoist(child) => hoist_children(e).into_iter().nth(child)?,
            ExprEdit::DropArg(arg) => match e {
                Expr::Call { callee, args } if arg < args.len() => {
                    let mut args = args.clone();
                    args.remove(arg);
                    Expr::Call { callee: callee.clone(), args }
                }
                Expr::New { callee, args } if arg < args.len() => {
                    let mut args = args.clone();
                    args.remove(arg);
                    Expr::New { callee: callee.clone(), args }
                }
                _ => return None,
            },
            // `0` for anything that isn't already a number (numbers are
            // the literal pass's job).
            ExprEdit::Zero => match e {
                Expr::Num(_) => return None,
                _ => Expr::Num(0.0),
            },
        };
        *changed = true;
        Some(repl)
    };
    let body: Vec<Stmt> =
        p.body.iter().map(|s| map_stmt(s, &mut counter, &mut changed, &mut map)).collect();
    changed.then_some(Program { body })
}

// ---------------------------------------------------------------------------
// Literal edits
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LitEdit {
    /// Num → 0.
    Zero,
    /// Num → trunc(n / 2).
    Half,
    /// Str → "".
    Empty,
}

/// Preorder count of `Num` and `Str` literals (statement order, then
/// expression order), matching [`edit_literal`]'s traversal.
fn count_literals(p: &Program) -> usize {
    let mut n = 0usize;
    walk_program(p, &mut |e| {
        if matches!(e, Expr::Num(_) | Expr::Str(_)) {
            n += 1;
        }
    });
    n
}

fn walk_program(p: &Program, f: &mut dyn FnMut(&Expr)) {
    for s in &p.body {
        walk_stmt(s, f);
    }
}

fn walk_stmt(s: &Stmt, f: &mut dyn FnMut(&Expr)) {
    match s {
        Stmt::Var { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, f);
            }
        }
        Stmt::Expr(e) => walk_expr(e, f),
        Stmt::If { cond, then, els } => {
            walk_expr(cond, f);
            walk_stmt(then, f);
            if let Some(e) = els {
                walk_stmt(e, f);
            }
        }
        Stmt::While { cond, body } => {
            walk_expr(cond, f);
            walk_stmt(body, f);
        }
        Stmt::DoWhile { body, cond } => {
            walk_stmt(body, f);
            walk_expr(cond, f);
        }
        Stmt::For { init, cond, update, body } => {
            if let Some(i) = init {
                walk_stmt(i, f);
            }
            if let Some(c) = cond {
                walk_expr(c, f);
            }
            if let Some(u) = update {
                walk_expr(u, f);
            }
            walk_stmt(body, f);
        }
        Stmt::Return(Some(e)) => walk_expr(e, f),
        Stmt::Function(d) => {
            for s in &d.body {
                walk_stmt(s, f);
            }
        }
        Stmt::Block(b) => {
            for s in b {
                walk_stmt(s, f);
            }
        }
        Stmt::Break | Stmt::Continue | Stmt::Return(None) | Stmt::Empty => {}
    }
}

fn walk_expr(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Assign { target, value, .. } => {
            walk_expr(target, f);
            walk_expr(value, f);
        }
        Expr::Binary { lhs, rhs, .. } | Expr::Logical { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::Update { target, .. } => walk_expr(target, f),
        Expr::Cond { cond, then, els } => {
            walk_expr(cond, f);
            walk_expr(then, f);
            walk_expr(els, f);
        }
        Expr::Call { callee, args } | Expr::New { callee, args } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Member { obj, .. } => walk_expr(obj, f),
        Expr::Index { obj, index } => {
            walk_expr(obj, f);
            walk_expr(index, f);
        }
        Expr::Array(items) => {
            for a in items {
                walk_expr(a, f);
            }
        }
        Expr::Object(props) => {
            for (_, v) in props {
                walk_expr(v, f);
            }
        }
        Expr::Function(d) => {
            for s in &d.body {
                walk_stmt(s, f);
            }
        }
        Expr::Num(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::Null
        | Expr::Undefined
        | Expr::This
        | Expr::Ident(_) => {}
    }
}

/// Apply `edit` to the `target`-th literal; `None` when it would not
/// change the literal (already 0 / already empty).
fn edit_literal(p: &Program, target: usize, edit: LitEdit) -> Option<Program> {
    let mut counter = 0usize;
    let mut changed = false;
    let mut map = |e: &Expr, counter: &mut usize, changed: &mut bool| -> Option<Expr> {
        match e {
            Expr::Num(n) => {
                let my = *counter;
                *counter += 1;
                if my != target {
                    return None;
                }
                match edit {
                    LitEdit::Zero if *n != 0.0 => {
                        *changed = true;
                        Some(Expr::Num(0.0))
                    }
                    LitEdit::Half if n.is_finite() && n.abs() >= 2.0 => {
                        *changed = true;
                        Some(Expr::Num((n / 2.0).trunc()))
                    }
                    _ => None,
                }
            }
            Expr::Str(s) => {
                let my = *counter;
                *counter += 1;
                if my != target {
                    return None;
                }
                match edit {
                    LitEdit::Empty if !s.is_empty() => {
                        *changed = true;
                        Some(Expr::Str("".into()))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    };
    let body: Vec<Stmt> =
        p.body.iter().map(|s| map_stmt(s, &mut counter, &mut changed, &mut map)).collect();
    changed.then_some(Program { body })
}

type LitMap<'a> = dyn FnMut(&Expr, &mut usize, &mut bool) -> Option<Expr> + 'a;

fn map_stmt(s: &Stmt, counter: &mut usize, changed: &mut bool, f: &mut LitMap) -> Stmt {
    match s {
        Stmt::Var { name, init } => Stmt::Var {
            name: name.clone(),
            init: init.as_ref().map(|e| map_expr(e, counter, changed, f)),
        },
        Stmt::Expr(e) => Stmt::Expr(map_expr(e, counter, changed, f)),
        Stmt::If { cond, then, els } => Stmt::If {
            cond: map_expr(cond, counter, changed, f),
            then: Box::new(map_stmt(then, counter, changed, f)),
            els: els.as_deref().map(|e| Box::new(map_stmt(e, counter, changed, f))),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: map_expr(cond, counter, changed, f),
            body: Box::new(map_stmt(body, counter, changed, f)),
        },
        Stmt::DoWhile { body, cond } => Stmt::DoWhile {
            body: Box::new(map_stmt(body, counter, changed, f)),
            cond: map_expr(cond, counter, changed, f),
        },
        Stmt::For { init, cond, update, body } => Stmt::For {
            init: init.as_deref().map(|i| Box::new(map_stmt(i, counter, changed, f))),
            cond: cond.as_ref().map(|c| map_expr(c, counter, changed, f)),
            update: update.as_ref().map(|u| map_expr(u, counter, changed, f)),
            body: Box::new(map_stmt(body, counter, changed, f)),
        },
        Stmt::Return(e) => Stmt::Return(e.as_ref().map(|e| map_expr(e, counter, changed, f))),
        Stmt::Function(d) => Stmt::Function(Rc::new(FuncDecl {
            name: d.name.clone(),
            params: d.params.clone(),
            body: d.body.iter().map(|s| map_stmt(s, counter, changed, f)).collect(),
            line: d.line,
        })),
        Stmt::Block(b) => {
            Stmt::Block(b.iter().map(|s| map_stmt(s, counter, changed, f)).collect())
        }
        Stmt::Break | Stmt::Continue | Stmt::Empty => s.clone(),
    }
}

fn map_expr(e: &Expr, counter: &mut usize, changed: &mut bool, f: &mut LitMap) -> Expr {
    if let Some(repl) = f(e, counter, changed) {
        return repl;
    }
    match e {
        Expr::Assign { target, op, value } => Expr::Assign {
            target: Box::new(map_expr(target, counter, changed, f)),
            op: *op,
            value: Box::new(map_expr(value, counter, changed, f)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(map_expr(lhs, counter, changed, f)),
            rhs: Box::new(map_expr(rhs, counter, changed, f)),
        },
        Expr::Logical { op, lhs, rhs } => Expr::Logical {
            op: *op,
            lhs: Box::new(map_expr(lhs, counter, changed, f)),
            rhs: Box::new(map_expr(rhs, counter, changed, f)),
        },
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(map_expr(expr, counter, changed, f)) }
        }
        Expr::Update { op, prefix, target } => Expr::Update {
            op: *op,
            prefix: *prefix,
            target: Box::new(map_expr(target, counter, changed, f)),
        },
        Expr::Cond { cond, then, els } => Expr::Cond {
            cond: Box::new(map_expr(cond, counter, changed, f)),
            then: Box::new(map_expr(then, counter, changed, f)),
            els: Box::new(map_expr(els, counter, changed, f)),
        },
        Expr::Call { callee, args } => Expr::Call {
            callee: Box::new(map_expr(callee, counter, changed, f)),
            args: args.iter().map(|a| map_expr(a, counter, changed, f)).collect(),
        },
        Expr::New { callee, args } => Expr::New {
            callee: Box::new(map_expr(callee, counter, changed, f)),
            args: args.iter().map(|a| map_expr(a, counter, changed, f)).collect(),
        },
        Expr::Member { obj, prop } => Expr::Member {
            obj: Box::new(map_expr(obj, counter, changed, f)),
            prop: prop.clone(),
        },
        Expr::Index { obj, index } => Expr::Index {
            obj: Box::new(map_expr(obj, counter, changed, f)),
            index: Box::new(map_expr(index, counter, changed, f)),
        },
        Expr::Array(items) => {
            Expr::Array(items.iter().map(|a| map_expr(a, counter, changed, f)).collect())
        }
        Expr::Object(props) => Expr::Object(
            props
                .iter()
                .map(|(k, v)| (k.clone(), map_expr(v, counter, changed, f)))
                .collect(),
        ),
        Expr::Function(d) => Expr::Function(Rc::new(FuncDecl {
            name: d.name.clone(),
            params: d.params.clone(),
            body: d.body.iter().map(|s| map_stmt(s, counter, changed, f)).collect(),
            line: d.line,
        })),
        Expr::Num(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::Null
        | Expr::Undefined
        | Expr::This
        | Expr::Ident(_) => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkelide_lang::node_count;

    #[test]
    fn deletes_irrelevant_statements() {
        let src = "var a = 1; var b = 2; print(\"keep\"); var c = 3; for (var i = 0; i < 9; i++) { a = a + i; }";
        let out = shrink_source(src, &ShrinkOptions::default(), &mut |s| s.contains("keep"));
        let p = parse_program(&out).unwrap();
        assert!(out.contains("keep"));
        assert!(node_count(&p) <= 4, "not minimal: {out}");
    }

    #[test]
    fn unwraps_loops_and_ifs_to_reach_inner_statements() {
        let src =
            "for (var i = 0; i < 3; i++) { if (i < 2) { print(\"inner\"); } else { print(\"x\"); } }";
        let out = shrink_source(src, &ShrinkOptions::default(), &mut |s| s.contains("inner"));
        assert!(out.contains("inner"));
        assert!(!out.contains("for"), "loop should be peeled: {out}");
    }

    #[test]
    fn hoists_subexpressions() {
        let src = "print(((1 + (2 * 3)) + \"x\"));";
        let out = shrink_source(src, &ShrinkOptions::default(), &mut |s| s.contains("print"));
        let p = parse_program(&out).unwrap();
        assert!(out.contains("print"));
        // `print((...))` reduces to `print(<leaf>)`: call + one leaf + stmt.
        assert!(node_count(&p) <= 4, "expression not hoisted: {out}");
    }

    #[test]
    fn halves_numeric_literals() {
        let src = "var n = 1000; print(n);";
        let out = shrink_source(src, &ShrinkOptions::default(), &mut |s| s.contains("print"));
        // 1000 halves down to 1 (or 0 via the Zero edit).
        assert!(!out.contains("1000"), "literal not reduced: {out}");
    }

    #[test]
    fn respects_the_check_budget() {
        let src = "var a = 1; var b = 2; var c = 3; var d = 4; print(9);";
        let mut calls = 0usize;
        let opts = ShrinkOptions { max_checks: 5 };
        let _ = shrink_source(src, &opts, &mut |_s| {
            calls += 1;
            true
        });
        assert!(calls <= 5, "budget exceeded: {calls}");
    }

    #[test]
    fn returns_input_when_oracle_rejects_normalized_form() {
        let src = "var a = 1;";
        let out = shrink_source(src, &ShrinkOptions::default(), &mut |_s| false);
        assert_eq!(out, src);
    }
}

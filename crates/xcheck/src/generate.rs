//! Seeded, deterministic njs program generator.
//!
//! [`generate_source`] maps a `u64` seed to a self-contained njs program
//! biased toward the engine's soft spots rather than uniform over the
//! grammar:
//!
//! * **constructor transition chains** — 1–3 constructors sharing field
//!   names, with conditional property adds so the same constructor
//!   produces several hidden-class shapes;
//! * **SMI → double → tagged flips** — object fields and array elements
//!   initialized as small integers and later overwritten with doubles or
//!   strings, some of them mid-loop inside already-optimized code (the
//!   misspeculation path);
//! * **elements-kind transitions** — a shared `data` array whose stores
//!   move through the Smi/Double/Tagged lattice on a phase schedule, plus
//!   occasional `push`/`pop` traffic to exercise stale-slot resurrection;
//! * **megamorphic sites** — worker functions whose `o.a`/`o.b` accesses
//!   see objects from every constructor, chosen per loop iteration;
//! * **version-explosion stressors** — branchy type-polymorphic diamond
//!   functions whose locals carry a different type on each arm (SMI /
//!   double / string / object) and merge with conflicting contexts,
//!   called with a per-iteration argument-type schedule: exercises
//!   BBV's entry-point specialization, context merges, and the
//!   per-block version cap's generic fallback.
//!
//! Programs are built from templates with randomized parameters, so they
//! always parse, never recurse (worker *k* only calls workers *j < k*),
//! and loop bounds are literal and small. A small fraction deliberately
//! ends in a runtime error; the differential oracle requires both sides
//! to agree on the message. All randomness comes from the vendored
//! [`proptest::TestRng`], so the same seed yields byte-identical source
//! on every platform.

use proptest::TestRng;
use std::fmt::Write as _;

/// Generate the njs program for `seed`. Deterministic: same seed, same
/// bytes.
pub fn generate_source(seed: u64) -> String {
    let mut g = Gen { rng: TestRng::new(seed), out: String::new() };
    g.program(seed);
    g.out
}

struct Gen {
    rng: TestRng,
    out: String,
}

impl Gen {
    // ----- randomness helpers -----

    fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    /// True with probability `num`/`den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    fn pick<'a>(&mut self, items: &[&'a str]) -> &'a str {
        items[self.below(items.len() as u64) as usize]
    }

    /// A literal: small int, quarter-step double, or (rarely) a string.
    fn literal(&mut self) -> String {
        match self.below(12) {
            0..=6 => format!("{}", self.below(17) as i64 - 3),
            7..=9 => format!("{}.{}", self.below(9), ["25", "5", "75"][self.below(3) as usize]),
            10 => format!("\"s{}\"", self.below(5)),
            _ => self.pick(&["true", "false", "null", "undefined"]).to_string(),
        }
    }

    // ----- expressions -----

    /// A side-effect-free expression over `env` names, depth-bounded.
    fn expr(&mut self, env: &[String], depth: u32) -> String {
        if depth == 0 || self.chance(2, 5) {
            return self.leaf(env);
        }
        match self.below(10) {
            0..=4 => {
                let op = self.pick(&["+", "+", "-", "*", "*", "&", "|", "^", "<<", ">>", ">>>", "/", "%"]);
                let l = self.expr(env, depth - 1);
                let r = self.expr(env, depth - 1);
                format!("({l} {op} {r})")
            }
            5 => {
                let op = self.pick(&["<", "<=", ">", ">=", "==", "!=", "===", "!=="]);
                let l = self.expr(env, depth - 1);
                let r = self.expr(env, depth - 1);
                format!("({l} {op} {r})")
            }
            6 => {
                let op = self.pick(&["-", "~", "!", "+"]);
                let e = self.expr(env, depth - 1);
                format!("({op} {e})")
            }
            7 => {
                let c = self.expr(env, depth - 1);
                let t = self.expr(env, depth - 1);
                let e = self.expr(env, depth - 1);
                format!("({c} ? {t} : {e})")
            }
            8 => self.builtin_call(env, depth),
            _ => {
                let op = self.pick(&["&&", "||"]);
                let l = self.expr(env, depth - 1);
                let r = self.expr(env, depth - 1);
                format!("({l} {op} {r})")
            }
        }
    }

    fn leaf(&mut self, env: &[String]) -> String {
        if !env.is_empty() && self.chance(3, 5) {
            env[self.below(env.len() as u64) as usize].clone()
        } else {
            self.literal()
        }
    }

    fn builtin_call(&mut self, env: &[String], depth: u32) -> String {
        match self.below(10) {
            0 => format!("Math.floor({})", self.expr(env, depth - 1)),
            1 => format!("Math.abs({})", self.expr(env, depth - 1)),
            2 => format!("Math.sqrt({})", self.expr(env, depth - 1)),
            3 => format!("Math.min({}, {})", self.expr(env, depth - 1), self.expr(env, depth - 1)),
            4 => format!("Math.max({}, {})", self.expr(env, depth - 1), self.expr(env, depth - 1)),
            5 => format!("Math.pow({}, {})", self.expr(env, depth - 1), self.below(4)),
            6 => format!("parseInt(\"{}{}\")", if self.chance(1, 3) { "0x" } else { "" }, self.below(300)),
            7 => format!("(\"abcdef\").charCodeAt({})", self.expr(env, depth - 1)),
            8 => format!("(\"xcheck\").indexOf(\"{}\")", self.pick(&["c", "he", "z", "ck"])),
            _ => "Math.random()".to_string(),
        }
    }

    // ----- program skeleton -----

    fn program(&mut self, seed: u64) {
        let _ = writeln!(self.out, "// xcheck seed {seed}");
        let n_ctors = 1 + self.below(3) as usize;
        let n_workers = 1 + self.below(4) as usize;
        let n_diamonds = self.below(3) as usize;
        for k in 0..n_ctors {
            self.constructor(k);
        }
        for k in 0..n_workers {
            self.worker(k);
        }
        for k in 0..n_diamonds {
            self.diamond(k);
        }
        self.main(n_ctors, n_workers, n_diamonds);
    }

    /// `function Ck(i, v) { this.a = ..; this.b = ..; [conditional adds] }`
    fn constructor(&mut self, k: usize) {
        let _ = writeln!(self.out, "function C{k}(i, v) {{");
        // `a` is the speculation target: usually numeric, sometimes a
        // double or (rarely) a string from birth.
        let a = match self.below(8) {
            0..=3 => format!("(i + {})", self.below(9)),
            4..=5 => "v".to_string(),
            6 => format!("((i * {}) + 0.5)", 1 + self.below(4)),
            _ => format!("(\"a{k}\" + i)"),
        };
        let _ = writeln!(self.out, "  this.a = {a};");
        let bm = 1 + self.below(5);
        let _ = writeln!(self.out, "  this.b = ((i * {bm}) + {k});");
        if self.chance(1, 2) {
            let env = vec!["i".to_string(), "v".to_string()];
            let e = self.expr(&env, 1);
            let _ = writeln!(self.out, "  this.c = {e};");
        }
        if self.chance(1, 4) {
            // Transition chain: same constructor, two shapes.
            let m = 2 + self.below(3);
            let r = self.below(m);
            let _ = writeln!(self.out, "  if ((i % {m}) == {r}) {{ this.d = (i * 2); }}");
        }
        if self.chance(1, 4) {
            let _ = writeln!(self.out, "  this.e = [i, (i + 1)];");
        }
        let _ = writeln!(self.out, "}}");
    }

    /// `function wk(o, i, a) { ... }` — field reads, array traffic, calls
    /// into lower-numbered workers.
    fn worker(&mut self, k: usize) {
        let _ = writeln!(self.out, "function w{k}(o, i, a) {{");
        let mut env: Vec<String> =
            ["o.a", "o.b", "i"].iter().map(|s| s.to_string()).collect();
        let e0 = self.expr(&env, 2);
        let _ = writeln!(self.out, "  var t0 = {e0};");
        let mut locals = 1usize;
        env.push("t0".to_string());
        let n_stmts = 2 + self.below(4);
        for _ in 0..n_stmts {
            match self.below(10) {
                0..=1 => {
                    let e = self.expr(&env, 2);
                    let _ = writeln!(self.out, "  var t{locals} = {e};");
                    env.push(format!("t{locals}"));
                    locals += 1;
                }
                2..=3 => {
                    let t = self.below(locals as u64);
                    let e = self.expr(&env, 2);
                    let _ = writeln!(self.out, "  t{t} = (t{t} + {e});");
                }
                4 => {
                    let c = self.expr(&env, 1);
                    let t = self.below(locals as u64);
                    let e1 = self.expr(&env, 1);
                    let e2 = self.expr(&env, 1);
                    let _ = writeln!(
                        self.out,
                        "  if ({c}) {{ t{t} = {e1}; }} else {{ t{t} = {e2}; }}"
                    );
                }
                5 => {
                    let bound = 2 + self.below(5);
                    let t = self.below(locals as u64);
                    let mut inner = env.clone();
                    inner.push("j".to_string());
                    let e = self.expr(&inner, 1);
                    let _ = writeln!(
                        self.out,
                        "  for (var j = 0; j < {bound}; j++) {{ t{t} = (t{t} + {e}); }}"
                    );
                }
                6 => {
                    let c = self.below(8);
                    let _ = writeln!(self.out, "  var t{locals} = a[((i + {c}) & 7)];");
                    env.push(format!("t{locals}"));
                    locals += 1;
                }
                7 => {
                    let c = 1 + self.below(7);
                    let e = self.expr(&env, 1);
                    let _ = writeln!(self.out, "  a[((i + {c}) % 8)] = {e};");
                }
                8 => {
                    // Property store inside a callee: usually type-stable,
                    // sometimes a type flip the optimizer must survive.
                    if self.chance(1, 5) {
                        let _ = writeln!(self.out, "  o.a = (\"m\" + i);");
                    } else {
                        let e = self.expr(&env, 1);
                        let _ = writeln!(self.out, "  o.b = {e};");
                    }
                }
                _ => {
                    if k > 0 {
                        let j = self.below(k as u64);
                        let _ = writeln!(self.out, "  var t{locals} = w{j}(o, (i + 1), a);");
                        env.push(format!("t{locals}"));
                        locals += 1;
                    } else {
                        let e = self.expr(&env, 1);
                        let _ = writeln!(self.out, "  t0 = (t0 - {e});");
                    }
                }
            }
        }
        let ret = self.expr(&env, 2);
        let _ = writeln!(self.out, "  return {ret};");
        let _ = writeln!(self.out, "}}");
    }

    /// `function dk(x, i) { ... }` — version-explosion stressor: a
    /// branchy type-polymorphic CFG. Each arm of an if/else chain gives
    /// the same local a different type (SMI, double, string, the
    /// caller-controlled `x`), the arms merge into uses with
    /// conflicting contexts, and a second diamond re-splits on an
    /// unrelated predicate so the join sees contexts that disagree on
    /// two variables at once.
    fn diamond(&mut self, k: usize) {
        let _ = writeln!(self.out, "function d{k}(x, i) {{");
        let arms = ["(i + 1)", "(i * 0.5)", "(\"d\" + i)", "x", "(i & 7)", "(x + i)"];
        let m = 2 + self.below(3); // 2..=4 arms
        let _ = writeln!(self.out, "  var u;");
        for a in 0..m {
            let e = arms[self.below(arms.len() as u64) as usize];
            if a == 0 {
                let _ = writeln!(self.out, "  if ((i % {m}) == 0) {{ u = {e}; }}");
            } else if a == m - 1 {
                let _ = writeln!(self.out, "  else {{ u = {e}; }}");
            } else {
                let _ = writeln!(self.out, "  else if ((i % {m}) == {a}) {{ u = {e}; }}");
            }
        }
        // Merge: the join block's context must reconcile the arms.
        let b = 2 + self.below(9);
        let _ = writeln!(self.out, "  var s = 0;");
        let _ = writeln!(self.out, "  if (i < {b}) {{ s = (u + i); }} else {{ s = (u + u); }}");
        if self.chance(1, 2) {
            // Second diamond on an unrelated predicate: contexts now
            // disagree on both `s` and `x` at the join below.
            let _ = writeln!(
                self.out,
                "  if ((i & 1) == 0) {{ s = (s + 1); x = (i + 2); }} else {{ x = (i + 0.5); }}"
            );
            let _ = writeln!(self.out, "  s = (s + x);");
        }
        if self.chance(1, 3) {
            let bound = 2 + self.below(4);
            let _ = writeln!(
                self.out,
                "  for (var j = 0; j < {bound}; j++) {{ s = (s + (u + j)); }}"
            );
        }
        let _ = writeln!(self.out, "  return s;");
        let _ = writeln!(self.out, "}}");
    }

    fn main(&mut self, n_ctors: usize, n_workers: usize, n_diamonds: usize) {
        // Seed `data` with a handful of SMIs so stores start at the bottom
        // of the elements-kind lattice.
        let init_len = 2 + self.below(5);
        let inits: Vec<String> = (0..init_len).map(|i| format!("{}", i * 2)).collect();
        let _ = writeln!(self.out, "var data = [{}];", inits.join(", "));
        let _ = writeln!(self.out, "var objs = [];");
        let _ = writeln!(self.out, "var acc = 0;");

        let n = 8 + self.below(33); // 8..=40 iterations: crosses opt_threshold=2
        let _ = writeln!(self.out, "for (var i = 0; i < {n}; i++) {{");

        // Constructor choice: if/else chain over `i % n_ctors`, one `new`
        // site per constructor, megamorphic uses downstream.
        let _ = writeln!(self.out, "  var o;");
        let env = vec!["i".to_string(), "acc".to_string()];
        for k in 0..n_ctors {
            let v = self.expr(&env, 1);
            if k == 0 && n_ctors == 1 {
                let _ = writeln!(self.out, "  o = new C0(i, {v});");
            } else if k == 0 {
                let _ = writeln!(self.out, "  if ((i % {n_ctors}) == 0) {{ o = new C0(i, {v}); }}");
            } else if k == n_ctors - 1 {
                let _ = writeln!(self.out, "  else {{ o = new C{k}(i, {v}); }}");
            } else {
                let _ =
                    writeln!(self.out, "  else if ((i % {n_ctors}) == {k}) {{ o = new C{k}(i, {v}); }}");
            }
        }
        let _ = writeln!(self.out, "  objs[i] = o;");

        // 1–2 worker calls feeding the accumulator.
        let calls = 1 + self.below(2);
        for _ in 0..calls {
            let w = self.below(n_workers as u64);
            let _ = writeln!(self.out, "  acc = (acc + w{w}(o, i, data));");
        }

        // Diamond calls with a per-iteration argument-type schedule:
        // the same call site feeds SMIs, doubles, strings and (maybe)
        // objects into the callee's entry, so entry-point
        // specialization must version — and eventually cap — it.
        for k in 0..n_diamonds {
            let alts = ["i", "(i * 0.25)", "(\"q\" + i)", "o", "(i - 8)"];
            let n_alts = 2 + self.below(3); // 2..=4 argument types
            let mut arg = alts[self.below(alts.len() as u64) as usize].to_string();
            for a in 1..n_alts {
                let alt = alts[self.below(alts.len() as u64) as usize];
                arg = format!("((i % {n_alts}) == {} ? {alt} : {arg})", a - 1);
            }
            let _ = writeln!(self.out, "  acc = (acc + d{k}({arg}, i));");
        }

        // Phased element stores: SMI, then double, then (maybe) tagged.
        let p1 = n / 3;
        let p2 = 2 * n / 3;
        let step = 1 + self.below(3);
        let tagged = self.chance(2, 3);
        let last = if tagged { "(\"x\" + i)".to_string() } else { format!("(i * {}.5)", self.below(3)) };
        let _ = writeln!(
            self.out,
            "  if (i < {p1}) {{ data[((i * {step}) % 8)] = (i - 2); }}\n  else if (i < {p2}) {{ data[((i * {step}) % 8)] = (i * 0.25); }}\n  else {{ data[((i * {step}) % 8)] = {last}; }}"
        );

        // Mid-loop misspeculation flips inside the optimized region.
        if self.chance(3, 4) {
            let kf = p2 + self.below((n - p2).max(1));
            let val = if self.chance(1, 2) { "\"flip\"".to_string() } else { "0.125".to_string() };
            let _ = writeln!(self.out, "  if (i == {kf}) {{ objs[0].a = {val}; }}");
        }
        if self.chance(1, 3) {
            let kf = 1 + self.below(n - 1);
            let _ = writeln!(self.out, "  if (i == {kf}) {{ objs[0].b = (\"b\" + i); }}");
        }
        // Stale-slot resurrection: pop then later in-capacity stores.
        if self.chance(1, 3) {
            let kp = 1 + self.below(n - 1);
            let _ = writeln!(self.out, "  if (i == {kp}) {{ data.pop(); }}");
        }
        if self.chance(1, 4) {
            let e = self.expr(&env, 1);
            let _ = writeln!(self.out, "  data.push({e});");
        }
        if self.chance(1, 8) {
            let _ = writeln!(self.out, "  if ((i & 31) == 29) {{ continue; }}");
        }
        let _ = writeln!(self.out, "}}");

        // Observations: accumulator, lengths, a window of elements (holes
        // read their kind-dependent fill, so this sees the lattice), and a
        // probe of every object field the loop may have flipped.
        let _ = writeln!(self.out, "print(acc);");
        let _ = writeln!(self.out, "print(data.length, objs.length);");
        let _ = writeln!(self.out, "for (var p = 0; p < 10; p++) {{ print(data[p]); }}");
        let _ = writeln!(self.out, "print(objs[0].a, objs[0].b, objs[0].c, objs[0].d);");
        let probe = self.below(8);
        let _ = writeln!(
            self.out,
            "print(objs[{probe}].a, objs[{probe}].b, objs[{probe}].c);"
        );

        // Post-loop misspeculation probe: call a now-optimized worker one
        // more time with an argument that contradicts its in-loop profile
        // (a double / string / null in the integer parameter). Elided
        // checks fire here *outside* the loop, so a divergence at this
        // call shrinks to a tiny reproducer — the warm-up loop unrolls to
        // a couple of bare calls while the probe stays.
        if self.chance(2, 3) {
            let w = self.below(n_workers as u64);
            let bad = self.pick(&["0.5", "\"probe\"", "null", "1e9"]);
            let _ = writeln!(self.out, "print(w{w}(objs[0], {bad}, data));");
        }

        // A small fraction of programs ends in a deliberate runtime error;
        // the oracle requires both sides to agree on the message.
        if self.chance(1, 16) {
            let err = self.pick(&[
                "objs[9999].a;",
                "var z = null; z.q;",
                "acc();",
                "var u; u[0];",
                "data[0].nope.deeper;",
            ]);
            let _ = writeln!(self.out, "{err}");
        }
        let _ = writeln!(self.out, "return ((acc + \"#\") + data.length);");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkelide_lang::parse_program;

    #[test]
    fn same_seed_same_bytes() {
        assert_eq!(generate_source(7), generate_source(7));
        assert_ne!(generate_source(7), generate_source(8));
    }

    #[test]
    fn every_seed_parses() {
        for seed in 0..300 {
            let src = generate_source(seed);
            parse_program(&src)
                .unwrap_or_else(|e| panic!("seed {seed} failed to parse: {e}\n{src}"));
        }
    }

    #[test]
    fn generator_hits_the_soft_spots() {
        // Across a window of seeds, the biased templates must actually
        // produce each soft-spot construct.
        let all: String = (0..64).map(generate_source).collect();
        for needle in [
            "new C0",
            "objs[0].a = ",
            ".pop()",
            ".push(",
            "% 8)] = (i * 0.25)",
            "this.d",
            // Version-explosion stressors: a diamond function with a
            // type-conflicting merge, and a polymorphic-argument call.
            "function d0(",
            "s = (u + u);",
            "acc = (acc + d0(",
        ] {
            assert!(all.contains(needle), "no seed in 0..64 produced `{needle}`");
        }
    }
}

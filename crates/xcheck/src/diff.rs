//! The differential runner.
//!
//! A program's *observables* are its printed lines plus its final value
//! (or runtime error message) — everything njs lets a program expose.
//! [`run_engine`] collects them from a fresh engine under one
//! [`EngineConfig`]; [`check_source`] compares the reference
//! interpreter's observables against every configuration of
//! [`config_matrix`]; [`sweep`] fans a seed range out across the
//! fault-isolated worker pool from `checkelide-bench`, shrinks every
//! divergence to a minimal reproducer and dumps it under a results
//! directory.
//!
//! Determinism contract: [`SweepReport::render`] depends only on the seed
//! range and the engine's behaviour — never on worker count or timing —
//! so the same sweep produces byte-identical reports at any `--jobs`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use checkelide_bench::run_cells;
use checkelide_engine::{EngineConfig, Mechanism, Vm};
use checkelide_isa::NullSink;
use checkelide_lang::{node_count, parse_program};
use checkelide_runtime::take_output;

use crate::generate::generate_source;
use crate::reference::run_reference;
use crate::shrink::{shrink_source, ShrinkOptions};

/// Everything a program can observably do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observed {
    /// Lines printed via `print` (in order).
    pub output: Vec<String>,
    /// Display string of the final value, or the error message.
    pub result: Result<String, String>,
}

impl Observed {
    fn describe(&self) -> String {
        let r = match &self.result {
            Ok(v) => format!("value `{v}`"),
            Err(e) => format!("error `{e}`"),
        };
        format!("{r}, {} output line(s)", self.output.len())
    }
}

/// Engine-side step budget (interpreted bytecodes + optimized ops)
/// applied to every differential run. Like
/// [`REF_STEP_BUDGET`](crate::reference::REF_STEP_BUDGET) it sits orders
/// of magnitude above what any generated program needs, so a candidate
/// either terminates under every executor or hits `step budget exceeded`
/// under every executor — a shrink edit that manufactures an infinite
/// loop (`i++` → `i`) can never hang the oracle. Empirically the
/// heaviest generated program uses ~19k engine steps, so 500k is ~26x
/// headroom while keeping a runaway candidate's cost to milliseconds
/// (shrinking tries thousands of candidates, many of them runaway).
pub const ENGINE_STEP_BUDGET: u64 = 500_000;

/// Run `src` on a fresh engine under `config` and collect observables.
///
/// The optimizing tier is installed unconditionally; whether it fires is
/// governed by `config.opt_enabled` / `config.opt_threshold`. When the
/// caller left `config.step_budget` at 0 (unlimited),
/// [`ENGINE_STEP_BUDGET`] is imposed.
pub fn run_engine(src: &str, config: EngineConfig) -> Observed {
    let _ = take_output(); // drain anything a previous (panicked) run left
    let mut config = config;
    if config.step_budget == 0 {
        config.step_budget = ENGINE_STEP_BUDGET;
    }
    let mut vm = Vm::new(config);
    checkelide_opt::install_optimizer(&mut vm);
    let mut sink = NullSink;
    let res = vm.run_program(src, &mut sink);
    let result = match res {
        Ok(v) => Ok(vm.rt.to_display_string(v)),
        Err(e) => Err(e.message),
    };
    Observed { output: take_output(), result }
}

/// The engine configurations every program must agree on.
///
/// * `baseline` — interpreter only: no optimizer, no profiling. This is
///   the engine-side ground truth the reference interpreter mirrors.
/// * `opt-noelide` — optimizing tier on, Class List maintained, but no
///   check elision (the paper's characterization configuration).
/// * `cc-full` — the full mechanism: Class-Cache-driven check elision
///   with misspeculation deopts.
/// * `cc-lowdeopt` — full mechanism with `max_deopts = 1`, so a single
///   misspeculation permanently banishes a function to the baseline
///   tier: exercises the epoch-bump / OSR-out path.
/// * `bbv` — software check elision: lazy basic-block versioning with
///   typed shape contexts, hardware mechanism off (profiling only, like
///   `opt-noelide`, so the two differ exactly by the versioning tier).
/// * `cc+bbv` — both elision mechanisms at once: BBV block versions on
///   top of the full Class Cache, exercising the interaction between
///   version-local facts and registered speculations.
/// * `region-eager` — full mechanism with `region_threshold = 1`, so
///   every optimized function tiers up to compiled regions after a
///   single plan-walking activation: exercises the region compiler,
///   the fused superinstructions, and the guard/deopt bridge on every
///   generated program.
/// * `region-tiny-cache` — eager region tiering with a 2 KiB code
///   cache, so concurrently-hot functions evict each other and
///   re-tier mid-run: exercises LRU eviction, recompilation, and the
///   epoch-keyed stale-entry guard.
///
/// `opt_threshold` is lowered to 2 so the short generated loops actually
/// tier up.
pub fn config_matrix() -> Vec<(String, EngineConfig)> {
    let base = EngineConfig::default();
    vec![
        (
            "baseline".into(),
            EngineConfig { opt_enabled: false, mechanism: Mechanism::Off, ..base },
        ),
        (
            "opt-noelide".into(),
            EngineConfig {
                opt_enabled: true,
                opt_threshold: 2,
                mechanism: Mechanism::ProfileOnly,
                ..base
            },
        ),
        (
            "cc-full".into(),
            EngineConfig {
                opt_enabled: true,
                opt_threshold: 2,
                mechanism: Mechanism::Full,
                ..base
            },
        ),
        (
            "cc-lowdeopt".into(),
            EngineConfig {
                opt_enabled: true,
                opt_threshold: 2,
                mechanism: Mechanism::Full,
                max_deopts: 1,
                ..base
            },
        ),
        (
            "bbv".into(),
            EngineConfig {
                opt_enabled: true,
                opt_threshold: 2,
                mechanism: Mechanism::ProfileOnly,
                bbv: true,
                ..base
            },
        ),
        (
            "cc+bbv".into(),
            EngineConfig {
                opt_enabled: true,
                opt_threshold: 2,
                mechanism: Mechanism::Full,
                bbv: true,
                ..base
            },
        ),
        (
            "region-eager".into(),
            EngineConfig {
                opt_enabled: true,
                opt_threshold: 2,
                mechanism: Mechanism::Full,
                region_threshold: 1,
                ..base
            },
        ),
        (
            "region-tiny-cache".into(),
            EngineConfig {
                opt_enabled: true,
                opt_threshold: 2,
                mechanism: Mechanism::Full,
                region_threshold: 1,
                code_cache_bytes: 2048,
                ..base
            },
        ),
    ]
}

/// A divergence between the reference interpreter and one engine
/// configuration.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Generator seed, when the program came from a sweep.
    pub seed: Option<u64>,
    /// Name of the diverging configuration (from [`config_matrix`]).
    pub config: String,
    /// What the reference interpreter observed.
    pub expected: Observed,
    /// What the engine observed.
    pub actual: Observed,
    /// The full program that diverged.
    pub source: String,
    /// Minimal reproducer, once shrinking has run.
    pub shrunk: Option<String>,
}

fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Compare `src` under the reference interpreter and every engine
/// configuration; `None` means full agreement. An engine panic counts as
/// a divergence (reported through the `actual` error side).
pub fn check_source(src: &str) -> Option<Mismatch> {
    let r = run_reference(src);
    let expected = Observed { output: r.output, result: r.result };
    for (name, config) in config_matrix() {
        let actual = catch_unwind(AssertUnwindSafe(|| run_engine(src, config)))
            .unwrap_or_else(|p| Observed {
                output: Vec::new(),
                result: Err(format!("engine panic: {}", panic_text(&*p))),
            });
        if actual != expected {
            return Some(Mismatch {
                seed: None,
                config: name,
                expected,
                actual,
                source: src.to_string(),
                shrunk: None,
            });
        }
    }
    None
}

/// Parameters of a differential sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// First generator seed.
    pub seed0: u64,
    /// Number of consecutive seeds to check.
    pub count: u64,
    /// Worker threads for the (seed × configs) cells.
    pub jobs: usize,
    /// Where to dump reproducers (`None` = don't write files).
    pub dump_dir: Option<PathBuf>,
    /// Shrinking budget: maximum oracle invocations per mismatch.
    pub max_shrink: usize,
}

/// Outcome of a sweep: which seeds diverged, with shrunk reproducers.
#[derive(Debug)]
pub struct SweepReport {
    /// First seed checked.
    pub seed0: u64,
    /// Seeds checked.
    pub count: u64,
    /// Divergences in seed order.
    pub mismatches: Vec<Mismatch>,
}

impl SweepReport {
    /// Deterministic textual report: depends only on seeds and engine
    /// behaviour, never on `--jobs` or timing.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let end = self.seed0 + self.count;
        s.push_str(&format!(
            "xcheck: seeds {}..{} ({} programs) x {} engine configs\n",
            self.seed0,
            end,
            self.count,
            config_matrix().len()
        ));
        s.push_str(&format!("mismatches: {}\n", self.mismatches.len()));
        for m in &self.mismatches {
            let seed = m.seed.map_or_else(|| "?".into(), |v| v.to_string());
            s.push_str(&format!("\n-- seed {seed} diverged on `{}`\n", m.config));
            s.push_str(&format!("   reference: {}\n", m.expected.describe()));
            s.push_str(&format!("   engine:    {}\n", m.actual.describe()));
            if let Some(line) = first_output_divergence(&m.expected, &m.actual) {
                s.push_str(&line);
            }
            if let Some(shrunk) = &m.shrunk {
                let nodes = parse_program(shrunk).map(|p| node_count(&p)).unwrap_or(0);
                s.push_str(&format!("   shrunk reproducer ({nodes} AST nodes):\n"));
                for l in shrunk.lines() {
                    s.push_str("   | ");
                    s.push_str(l);
                    s.push('\n');
                }
            }
        }
        s
    }
}

fn first_output_divergence(exp: &Observed, act: &Observed) -> Option<String> {
    for (i, (e, a)) in exp.output.iter().zip(act.output.iter()).enumerate() {
        if e != a {
            return Some(format!("   first output divergence, line {i}: `{e}` vs `{a}`\n"));
        }
    }
    if exp.output.len() != act.output.len() {
        return Some(format!(
            "   output length differs: {} vs {} line(s)\n",
            exp.output.len(),
            act.output.len()
        ));
    }
    None
}

/// Check `count` consecutive seeds starting at `seed0` in parallel,
/// shrink every divergence, and (optionally) dump reproducers.
pub fn sweep(opts: &SweepOptions) -> SweepReport {
    let cells: Vec<(String, u64)> = (opts.seed0..opts.seed0 + opts.count)
        .map(|s| (format!("seed-{s}"), s))
        .collect();
    let outcomes = run_cells(cells, opts.jobs.max(1), |&seed: &u64| {
        let src = generate_source(seed);
        check_source(&src).map(|m| Mismatch { seed: Some(seed), ..m })
    });

    let mut mismatches: Vec<Mismatch> = Vec::new();
    for o in outcomes {
        match o.result {
            Ok(None) => {}
            Ok(Some(m)) => mismatches.push(m),
            Err(e) => {
                // A panic that escaped the per-config catch (e.g. inside
                // the reference interpreter or the generator itself).
                let seed = opts.seed0 + o.index as u64;
                mismatches.push(Mismatch {
                    seed: Some(seed),
                    config: "harness".into(),
                    expected: Observed { output: Vec::new(), result: Ok(String::new()) },
                    actual: Observed {
                        output: Vec::new(),
                        result: Err(format!("panic: {}", e.message)),
                    },
                    source: generate_source(seed),
                    shrunk: None,
                });
            }
        }
    }

    // Shrink serially in seed order so the report stays deterministic.
    for m in &mut mismatches {
        let sopts = ShrinkOptions { max_checks: opts.max_shrink };
        let shrunk = shrink_source(&m.source, &sopts, &mut |s: &str| {
            catch_unwind(AssertUnwindSafe(|| check_source(s).is_some())).unwrap_or(true)
        });
        m.shrunk = Some(shrunk);
    }

    if let Some(dir) = &opts.dump_dir {
        if !mismatches.is_empty() {
            dump_reproducers(dir, &mismatches);
        }
    }

    SweepReport { seed0: opts.seed0, count: opts.count, mismatches }
}

/// Write `seed-N.njs` (shrunk, with a header describing the divergence)
/// and `seed-N.orig.njs` (the unshrunk program) under `dir`.
fn dump_reproducers(dir: &Path, mismatches: &[Mismatch]) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    for m in mismatches {
        let seed = m.seed.unwrap_or(0);
        let mut header = String::new();
        header.push_str("// xcheck reproducer\n");
        header.push_str(&format!("// seed: {seed}\n"));
        header.push_str(&format!("// config: {}\n", m.config));
        header.push_str(&format!("// reference: {}\n", m.expected.describe()));
        header.push_str(&format!("// engine:    {}\n", m.actual.describe()));
        header.push_str(&format!(
            "// replay: cargo run -p checkelide-xcheck --bin xcheck -- --seed {seed} --count 1\n"
        ));
        let body = m.shrunk.as_deref().unwrap_or(&m.source);
        let _ = std::fs::write(dir.join(format!("seed-{seed}.njs")), format!("{header}{body}"));
        let _ = std::fs::write(dir.join(format!("seed-{seed}.orig.njs")), &m.source);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_the_eight_configs() {
        let m = config_matrix();
        let names: Vec<&str> = m.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "baseline",
                "opt-noelide",
                "cc-full",
                "cc-lowdeopt",
                "bbv",
                "cc+bbv",
                "region-eager",
                "region-tiny-cache"
            ]
        );
        assert!(!m[0].1.opt_enabled);
        assert_eq!(m[3].1.max_deopts, 1);
        assert!(m.iter().skip(1).all(|(_, c)| c.opt_threshold == 2));
        // The BBV configs differ from opt-noelide / cc-full exactly by
        // the versioning tier.
        assert!(m[4].1.bbv && m[4].1.mechanism == Mechanism::ProfileOnly);
        assert!(m[5].1.bbv && m[5].1.mechanism == Mechanism::Full);
        assert!(m.iter().take(4).all(|(_, c)| !c.bbv));
        // The region configs tier up after one plan-walking activation;
        // the tiny-cache variant forces mid-run LRU eviction.
        assert!(m[6].1.region_threshold == 1 && m[6].1.regions);
        assert_eq!(m[7].1.code_cache_bytes, 2048);
        assert!(m.iter().take(6).all(|(_, c)| c.region_threshold > 1));
    }

    #[test]
    fn run_engine_collects_output_and_value() {
        let obs = run_engine("print(1, 2); print(\"x\"); return 1 + 0.5;", config_matrix()[0].1);
        assert_eq!(obs.output, vec!["1 2", "x"]);
        assert_eq!(obs.result, Ok("1.5".into()));
    }

    #[test]
    fn run_engine_reports_errors() {
        let obs = run_engine("print(\"before\"); null.x;", config_matrix()[0].1);
        assert_eq!(obs.output, vec!["before"]);
        assert_eq!(obs.result.unwrap_err(), "cannot read property `x` of null");
    }

    #[test]
    fn check_source_agrees_on_simple_programs() {
        for src in [
            "var s = 0; for (var i = 0; i < 20; i++) { s += i; } return s;",
            "function C() { this.a = 1; } var o = new C(); return o.a;",
            "print(0.1 + 0.2); return [1, 2.5, \"x\"].length;",
            "var a = [1]; a[5] = 2.5; return a[3];",
        ] {
            assert!(check_source(src).is_none(), "spurious mismatch on {src}");
        }
    }

    #[test]
    fn check_source_catches_a_seeded_divergence() {
        // A program the engine and reference both *error* on, but where a
        // deliberately wrong expectation would show up as a mismatch: use
        // an actually-diverging pair by comparing against a doctored
        // reference via the public API. Simplest honest test: a program
        // that agrees must produce None; disagreement machinery is
        // exercised end-to-end by the injected-bug drill in EXPERIMENTS.md
        // and by `sweep` unit coverage below.
        assert!(check_source("return 1;").is_none());
    }

    #[test]
    fn sweep_report_is_deterministic_across_jobs() {
        let mk = |jobs| {
            sweep(&SweepOptions {
                seed0: 1,
                count: 8,
                jobs,
                dump_dir: None,
                max_shrink: 50,
            })
            .render()
        };
        assert_eq!(mk(1), mk(4));
    }
}

//! Fixed-seed corpus replay — the cheap CI face of the fuzzer.
//!
//! The full sweep (`cargo run -p checkelide-xcheck --bin xcheck`) covers
//! hundreds of seeds; this test pins a smaller deterministic corpus into
//! the ordinary `cargo test` lane so a semantic regression in any tier
//! fails the build even when nobody runs the binary. The generator is
//! seeded and platform-independent, so seed `N` denotes the same program
//! forever — a failure here names the exact reproducer
//! (`generate_source(N)`).

use checkelide_xcheck::{check_source, generate_source, sweep, SweepOptions};

/// Replayed on every `cargo test`: seeds 1..=64 must agree across the
/// reference interpreter and all four engine configurations.
#[test]
fn corpus_seeds_1_to_64_have_no_divergence() {
    let mut failures = Vec::new();
    for seed in 1..=64u64 {
        let src = generate_source(seed);
        if let Some(m) = check_source(&src) {
            failures.push(format!(
                "seed {seed} diverged on `{}`: reference {:?} vs engine {:?}",
                m.config, m.expected.result, m.actual.result
            ));
        }
    }
    assert!(failures.is_empty(), "corpus divergences:\n{}", failures.join("\n"));
}

/// The sweep report must depend only on the seed range — never on the
/// worker count. (The unit test covers 8 seeds; this covers a corpus
/// big enough to actually interleave workers.)
#[test]
fn sweep_is_deterministic_across_worker_counts() {
    let run = |jobs: usize| {
        sweep(&SweepOptions {
            seed0: 1,
            count: 32,
            jobs,
            dump_dir: None,
            max_shrink: 50,
        })
        .render()
    };
    let one = run(1);
    assert_eq!(one, run(4), "report differs between --jobs 1 and --jobs 4");
    assert_eq!(one, run(7), "report differs between --jobs 1 and --jobs 7");
}

/// Seeded generation is bit-stable: byte-identical output per seed, and
/// the corpus actually exercises the engine's soft spots (constructors,
/// worker calls, element stores, misspeculation flips).
#[test]
fn corpus_programs_are_stable_and_interesting() {
    let mut hits = 0usize;
    for seed in 1..=64u64 {
        let src = generate_source(seed);
        assert_eq!(src, generate_source(seed), "seed {seed} not reproducible");
        if src.contains("new C0") && src.contains("w0(") {
            hits += 1;
        }
    }
    assert!(hits >= 60, "corpus lost its structure: only {hits}/64 with ctor+worker");
}

//! Hand-written reference-vs-engine battery.
//!
//! Each program targets a semantic corner where the multi-tier engine
//! could plausibly diverge from the language definition: tagging
//! boundaries, elements-kind transitions, hidden-class growth,
//! speculative optimization and deoptimization, error propagation. The
//! oracle ([`checkelide_xcheck::check_source`]) runs every program under
//! the reference interpreter and all four engine configurations and
//! requires identical observables.

use checkelide_xcheck::check_source;

fn agree(programs: &[&str]) {
    for src in programs {
        if let Some(m) = check_source(src) {
            panic!(
                "divergence on `{}`:\n  reference: {:?} {:?}\n  engine[{}]: {:?} {:?}\n--- src ---\n{src}",
                m.config, m.expected.result, m.expected.output, m.config, m.actual.result,
                m.actual.output,
            );
        }
    }
}

#[test]
fn numbers_and_tagging_boundaries() {
    agree(&[
        // SMI overflow into doubles, both directions.
        "var x = 1073741823; return x + 1;",
        "var x = -1073741824; return x - 1;",
        "var s = 0; for (var i = 0; i < 40; i++) { s = s * 3 + i; } return s;",
        // Double arithmetic that lands back on an integral value.
        "return 0.5 + 0.5;",
        "return 1e9 * 1e9;",
        "print(0.1 + 0.2, 1 / 3, -0.0); return 2147483648;",
        // Int32/UInt32 coercions.
        "return ((-5 >>> 1) + (7 << 30)) | 0;",
        "return (4294967295 >>> 0) + (-1 >> 31);",
        // NaN / Infinity display and propagation.
        "print(0 / 0, 1 / 0, -1 / 0); return (0 / 0) == (0 / 0);",
    ]);
}

#[test]
fn strings_and_coercions() {
    agree(&[
        "return (\"a\" + 1) + (1 + \"a\");",
        "return \"5\" * \"4\";",
        "return \"abc\".length + \"abc\".charCodeAt(1);",
        "return \"hello\".substring(1, 3) + \"hello\".indexOf(\"llo\");",
        "return String.fromCharCode(104, 105);",
        "print(\"\" + null, \"\" + undefined, \"\" + true);",
        "return parseInt(\"0x1f\") + parseFloat(\"2.5e1\");",
        "return (\"b\" > \"a\") + (\"10\" < \"9\") + (10 < 9);",
    ]);
}

#[test]
fn equality_and_truthiness() {
    agree(&[
        "return (null == undefined) + (null === undefined) + (0 == \"0\") + (0 === \"0\");",
        "print(1 == true, \"1\" == true, \"\" == false, [] == 0);",
        "var n = 0; if (\"\") n += 1; if (\"0\") n += 2; if (0.0) n += 4; if ([]) n += 8; return n;",
        "return (NaN != NaN) && !(null < 1 && null > -1) || (undefined == null);",
    ]);
}

#[test]
fn objects_and_hidden_class_growth() {
    agree(&[
        // Property addition order ⇒ different hidden classes, same values.
        "function A() { this.x = 1; this.y = 2; } function B() { this.y = 2; this.x = 1; } \
         var a = new A(); var b = new B(); return a.x + a.y + b.x + b.y;",
        // Long transition chain (forces line-1+ property storage).
        "var o = {}; o.a = 1; o.b = 2; o.c = 3; o.d = 4; o.e = 5; o.f = 6; o.g = 7; o.h = 8; \
         return o.a + o.h;",
        // Missing properties read undefined; writes create them.
        "var o = { a: 1 }; var before = o.b; o.b = 2; return \"\" + before + o.b;",
        // Object display strings.
        "print({}, { a: 1 }, [1, [2, 3]]);",
        // `this` in methods vs. bare calls.
        "function C() { this.v = 7; } var c = new C(); return c.v;",
        // Constructor returning an object overrides `this`.
        "function D() { this.v = 1; return { v: 42 }; } return (new D()).v;",
    ]);
}

#[test]
fn elements_kinds_and_holes() {
    agree(&[
        // SMI → double → tagged transitions preserve values.
        "var a = [1, 2, 3]; a[0] = 0.5; a[1] = \"s\"; return \"\" + a[0] + a[1] + a[2];",
        // Holes read undefined at every kind.
        "var a = [1]; a[4] = 2; print(a[2], a.length); a[2] = 0.5; return a[2];",
        "var a = []; a[3] = 0.25; return \"\" + a[0] + a[3];",
        // pop/push and length interplay.
        "var a = [1, 2, 3]; a.pop(); a.push(9.5); a.push(\"x\"); return a.length + \"\" + a[2];",
        // Out-of-range and negative indices.
        "var a = [1, 2]; return \"\" + a[-1] + a[99] + a[1];",
        // Array display after transitions.
        "var a = [1, 2]; a[0] = \"q\"; print(a); return a.length;",
    ]);
}

#[test]
fn optimization_and_deopt_transparency() {
    agree(&[
        // Hot monomorphic loop: tier-up must not change the sum.
        "function f(o) { return o.v + 1; } function C() { this.v = 2; } var s = 0; \
         for (var i = 0; i < 30; i++) { s += f(new C()); } return s;",
        // Shape flip mid-loop: misspeculation deopt must be transparent.
        "function f(o) { return o.v; } function C() { this.v = 1; } \
         var c = new C(); var s = \"\"; \
         for (var i = 0; i < 25; i++) { if (i == 20) { c.v = \"str\"; } s = s + f(c); } return s;",
        // SMI → double flip on an accumulator inside optimized code.
        "function g(x) { return x * 2; } var s = 0; \
         for (var i = 0; i < 25; i++) { s += g(i == 22 ? 0.5 : 1); } return s;",
        // Element kind flip under an optimized indexed load.
        "function h(a, i) { return a[i & 3]; } var a = [1, 2, 3, 4]; var s = \"\"; \
         for (var i = 0; i < 24; i++) { if (i == 18) { a[1] = \"e\"; } s = s + h(a, i); } return s;",
        // Megamorphic property access.
        "function A() { this.v = 1; } function B() { this.w = 0; this.v = 2; } \
         function C() { this.x = 0; this.y = 0; this.v = 3; } \
         function get(o) { return o.v; } var s = 0; \
         for (var i = 0; i < 30; i++) { var o; if (i % 3 == 0) o = new A(); \
         else if (i % 3 == 1) o = new B(); else o = new C(); s += get(o); } return s;",
    ]);
}

#[test]
fn runtime_errors_match() {
    agree(&[
        "var o = null; return o.x;",
        "var u; return u.prop;",
        "var n = 5; n();",
        "var a; a[0];",
        "print(\"side\"); var z = null; z.q.r;",
        // Error after optimization warm-up.
        "function f(o) { return o.v; } function C() { this.v = 1; } \
         for (var i = 0; i < 20; i++) { f(new C()); } f(null);",
    ]);
}

#[test]
fn builtins_and_math() {
    agree(&[
        "return Math.floor(2.7) + Math.ceil(2.1) + Math.round(2.5) + Math.abs(-3);",
        "return Math.min(1, 2.5, -1) + Math.max(0, \"3\");",
        "return Math.sqrt(16) + Math.pow(2, 10);",
        "print(Math.floor(-2.5), Math.round(-2.5), Math.sqrt(-1));",
        // Math.random must be the same seeded stream on both sides.
        "var a = Math.random(); var b = Math.random(); print(a == a, b == b, a == b); \
         return (a >= 0) && (a < 1) && (b >= 0) && (b < 1);",
    ]);
}

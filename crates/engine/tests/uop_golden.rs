//! Golden properties of the emitted µop traces: the baseline tier retires
//! only Rest-of-Code/Runtime µops, memory µops carry plausible simulated
//! addresses, and Full mode adds exactly the paper's new instructions.

use checkelide_engine::{EngineConfig, Mechanism, Vm};
use checkelide_isa::layout;
use checkelide_isa::trace::VecSink;
use checkelide_isa::uop::{Category, Region, UopKind};

fn trace(src: &str, mech: Mechanism) -> VecSink {
    let mut vm = Vm::new(EngineConfig {
        mechanism: mech,
        opt_enabled: false,
        ..EngineConfig::default()
    });
    let mut sink = VecSink::new();
    vm.run_program(src, &mut sink).expect("program runs");
    sink
}

const SRC: &str = "function T(v) { this.v = v; }
     var a = [];
     for (var i = 0; i < 10; i++) a[i] = new T(i);
     var s = 0;
     for (var i = 0; i < 10; i++) s += a[i].v;";

#[test]
fn baseline_tier_emits_no_optimized_categories() {
    let t = trace(SRC, Mechanism::Off);
    assert!(!t.is_empty());
    for u in &t.uops {
        assert_ne!(u.region, Region::Optimized, "baseline-only run");
        assert!(
            matches!(u.category, Category::RestOfCode),
            "baseline µops are Rest of Code (got {:?})",
            u.category
        );
    }
}

#[test]
fn memory_uops_land_in_known_regions() {
    let t = trace(SRC, Mechanism::Off);
    let mut heap = 0u64;
    let mut stack = 0u64;
    let mut globals = 0u64;
    for u in &t.uops {
        // Instruction addresses must be in a code region.
        assert!(
            u.pc >= layout::BASELINE_CODE_BASE && u.pc < layout::CLASS_LIST_BASE,
            "pc {:#x} outside code regions",
            u.pc
        );
        if let Some(m) = u.mem {
            if m.addr >= layout::STACK_BASE {
                stack += 1;
            } else if m.addr >= 0x7e00_0000 {
                globals += 1;
            } else if m.addr >= layout::HEAP_BASE && m.addr < layout::BASELINE_CODE_BASE {
                heap += 1;
            }
        }
    }
    assert!(heap > 50, "heap traffic expected ({heap})");
    // Top-level vars live in globals; only constructor params hit frames.
    assert!(stack >= 10, "frame-slot traffic expected ({stack})");
    assert!(globals > 5, "global-cell traffic expected ({globals})");
}

#[test]
fn full_mode_adds_exactly_the_new_instructions() {
    let off = trace(SRC, Mechanism::Off);
    let full = trace(SRC, Mechanism::Full);
    let count = |t: &VecSink, k: UopKind| t.uops.iter().filter(|u| u.kind == k).count();

    for k in [
        UopKind::MovClassId,
        UopKind::MovClassIdArray,
        UopKind::MovStoreClassCache,
        UopKind::MovStoreClassCacheArray,
    ] {
        assert_eq!(count(&off, k), 0, "{k:?} must not appear without the mechanism");
    }
    // Property stores inside the constructor → movStoreClassCache;
    // element stores of objects → movStoreClassCacheArray (+ its
    // movClassIDArray holder-class load, unhoisted in baseline).
    assert!(count(&full, UopKind::MovStoreClassCache) >= 10);
    assert!(count(&full, UopKind::MovStoreClassCacheArray) >= 10);
    assert!(count(&full, UopKind::MovClassIdArray) >= 10);
    assert!(count(&full, UopKind::MovClassId) >= 20);
    // Every special store still performs its data write.
    for u in &full.uops {
        if u.kind == UopKind::MovStoreClassCache || u.kind == UopKind::MovStoreClassCacheArray
        {
            let m = u.mem.expect("special stores write memory");
            assert!(m.is_store);
            assert!(m.addr >= layout::HEAP_BASE && m.addr < layout::BASELINE_CODE_BASE);
        }
    }
}

#[test]
fn class_cache_misses_fetch_the_class_list() {
    let full = trace(SRC, Mechanism::Full);
    let cl_loads = full
        .uops
        .iter()
        .filter(|u| {
            u.kind == UopKind::Load
                && u.mem.is_some_and(|m| {
                    m.addr >= layout::CLASS_LIST_BASE && m.addr < layout::STACK_BASE
                })
        })
        .count();
    assert!(cl_loads > 0, "cold Class Cache misses walk the in-memory Class List");
}

#[test]
fn traces_are_identical_across_repeat_runs() {
    let a = trace(SRC, Mechanism::Full);
    let b = trace(SRC, Mechanism::Full);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.uops.iter().zip(&b.uops) {
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.pc, y.pc);
        assert_eq!(x.category, y.category);
        assert_eq!(x.mem.map(|m| m.addr), y.mem.map(|m| m.addr));
    }
}

//! End-to-end baseline-interpreter tests: parse → compile → run, checking
//! results, feedback, profiling and GC behaviour.

use checkelide_engine::{EngineConfig, Mechanism, Vm};
use checkelide_isa::{CounterSink, NullSink};
use checkelide_runtime::Value;

fn run(src: &str) -> (Vm, Value) {
    let mut vm = Vm::new(EngineConfig::default());
    let mut sink = NullSink::new();
    let v = vm.run_program(src, &mut sink).expect("program runs");
    (vm, v)
}

fn eval_global(src: &str, name: &str) -> Value {
    let (vm, _) = run(src);
    vm.global_value(name).unwrap_or_else(|| panic!("global {name} not set"))
}

fn eval_num(src: &str) -> f64 {
    let (vm, _) = run(&format!("var __r = ({src});"));
    let v = vm.global_value("__r").unwrap();
    vm.rt.to_f64(v)
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(eval_num("1 + 2 * 3"), 7.0);
    assert_eq!(eval_num("(1 + 2) * 3"), 9.0);
    assert_eq!(eval_num("10 / 4"), 2.5);
    assert_eq!(eval_num("7 % 3"), 1.0);
    assert_eq!(eval_num("-7 % 3"), -1.0);
    assert_eq!(eval_num("2147483647 + 1"), 2147483648.0);
    assert_eq!(eval_num("0.1 + 0.2"), 0.1 + 0.2);
    assert_eq!(eval_num("1 << 10"), 1024.0);
    assert_eq!(eval_num("-1 >>> 0"), 4294967295.0);
    assert_eq!(eval_num("~5"), -6.0);
    assert_eq!(eval_num("5 & 3"), 1.0);
    assert_eq!(eval_num("5 | 3"), 7.0);
    assert_eq!(eval_num("5 ^ 3"), 6.0);
}

#[test]
fn comparisons_and_logic() {
    assert_eq!(eval_num("1 < 2 ? 10 : 20"), 10.0);
    assert_eq!(eval_num("2 <= 1 ? 10 : 20"), 20.0);
    assert_eq!(eval_num("(1 == '1') ? 1 : 0"), 1.0);
    assert_eq!(eval_num("(1 === 1) ? 1 : 0"), 1.0);
    assert_eq!(eval_num("(null == undefined) ? 1 : 0"), 1.0);
    assert_eq!(eval_num("(null === undefined) ? 1 : 0"), 0.0);
    assert_eq!(eval_num("0 || 7"), 7.0);
    assert_eq!(eval_num("3 || 7"), 3.0);
    assert_eq!(eval_num("0 && 7"), 0.0);
    assert_eq!(eval_num("2 && 7"), 7.0);
    assert_eq!(eval_num("!0 ? 1 : 2"), 1.0);
}

#[test]
fn loops_and_control_flow() {
    assert_eq!(
        eval_num("(function() { var s = 0; for (var i = 0; i < 10; i++) s += i; return s; })()"),
        45.0
    );
    assert_eq!(
        eval_num(
            "(function() { var s = 0; var i = 0; while (i < 10) { i++; if (i % 2) continue; s \
             += i; if (i >= 8) break; } return s; })()"
        ),
        (2 + 4 + 6 + 8) as f64
    );
    assert_eq!(
        eval_num("(function() { var i = 0; do { i++; } while (i < 5); return i; })()"),
        5.0
    );
}

#[test]
fn functions_and_recursion() {
    let v = eval_global(
        "function fib(n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
         var r = fib(15);",
        "r",
    );
    assert_eq!(v.as_smi(), 610);
}

#[test]
fn objects_and_hidden_classes() {
    let (vm, _) = run(
        "function Point(x, y) { this.x = x; this.y = y; }
         var a = new Point(1, 2);
         var b = new Point(3, 4);
         var s = a.x + a.y + b.x + b.y;
         a.x = 10;
         var t = a.x;",
    );
    assert_eq!(vm.global_value("s").unwrap().as_smi(), 10);
    assert_eq!(vm.global_value("t").unwrap().as_smi(), 10);
    // a and b share a hidden class.
    let a = vm.global_value("a").unwrap();
    let b = vm.global_value("b").unwrap();
    assert_eq!(vm.rt.object_map(a), vm.rt.object_map(b));
}

#[test]
fn object_literals() {
    let (vm, _) = run("var o = { a: 1, b: { c: 2 } }; var r = o.a + o.b.c;");
    assert_eq!(vm.global_value("r").unwrap().as_smi(), 3);
}

#[test]
fn arrays_and_elements_kinds() {
    let (vm, _) = run(
        "var a = [1, 2, 3];
         a[3] = 4;
         var s = a[0] + a[1] + a[2] + a[3] + a.length;
         var d = [1.5, 2.5];
         var ds = d[0] + d[1];
         a.push(5);
         var p = a.pop();
         var len = a.length;",
    );
    assert_eq!(vm.global_value("s").unwrap().as_smi(), 14);
    assert_eq!(vm.rt.to_f64(vm.global_value("ds").unwrap()), 4.0);
    assert_eq!(vm.global_value("p").unwrap().as_smi(), 5);
    assert_eq!(vm.global_value("len").unwrap().as_smi(), 4);
}

#[test]
fn strings() {
    let (vm, _) = run(
        "var s = 'hello' + ' ' + 'world';
         var n = s.length;
         var c = s.charCodeAt(0);
         var sub = s.substring(0, 5);
         var i = s.indexOf('world');
         var ch = s.charAt(4);
         var cat = 'x=' + 5 + '!';",
    );
    let s = |name: &str| {
        let v = vm.global_value(name).unwrap();
        vm.rt.to_display_string(v)
    };
    assert_eq!(s("s"), "hello world");
    assert_eq!(vm.global_value("n").unwrap().as_smi(), 11);
    assert_eq!(vm.global_value("c").unwrap().as_smi(), 104);
    assert_eq!(s("sub"), "hello");
    assert_eq!(vm.global_value("i").unwrap().as_smi(), 6);
    assert_eq!(s("ch"), "o");
    assert_eq!(s("cat"), "x=5!");
}

#[test]
fn math_builtins() {
    assert_eq!(eval_num("Math.sqrt(16)"), 4.0);
    assert_eq!(eval_num("Math.abs(-3.5)"), 3.5);
    assert_eq!(eval_num("Math.max(1, 7, 3)"), 7.0);
    assert_eq!(eval_num("Math.floor(2.7)"), 2.0);
    assert_eq!(eval_num("Math.pow(2, 8)"), 256.0);
    let r = eval_num("Math.random()");
    assert!((0.0..1.0).contains(&r));
}

#[test]
fn methods_stored_as_properties() {
    let (vm, _) = run(
        "function Counter(start) {
             this.n = start;
             this.bump = counterBump;
         }
         function counterBump(by) { this.n = this.n + by; return this.n; }
         var c = new Counter(10);
         c.bump(5);
         var r = c.bump(1);",
    );
    assert_eq!(vm.global_value("r").unwrap().as_smi(), 16);
}

#[test]
fn constructor_with_many_properties_relocates() {
    let (vm, _) = run(
        "function Big(v) {
             this.p0 = v; this.p1 = v; this.p2 = v; this.p3 = v;
             this.p4 = v; this.p5 = v; this.p6 = v; this.p7 = v; this.p8 = v;
         }
         var o = new Big(3);
         var r = o.p0 + o.p5 + o.p8;
         var o2 = new Big(1);
         var r2 = o2.p8;",
    );
    assert_eq!(vm.global_value("r").unwrap().as_smi(), 9);
    assert_eq!(vm.global_value("r2").unwrap().as_smi(), 1);
    // Slack tracking: only the first construction relocated.
    assert_eq!(vm.rt.heap.stats().relocations, 1);
}

#[test]
fn feedback_is_recorded() {
    let (vm, _) = run(
        "function Point(x) { this.x = x; }
         function get(p) { return p.x; }
         var s = 0;
         for (var i = 0; i < 20; i++) { s += get(new Point(i)); }",
    );
    // `get` has a monomorphic property-load site.
    let get_ix = vm
        .funcs
        .iter()
        .position(|f| f.decl.name == "get")
        .expect("get registered");
    let fb = &vm.funcs[get_ix].feedback;
    let site = fb
        .iter()
        .find_map(|f| match f {
            checkelide_engine::FeedbackSlot::Site(s) if !s.maps.is_empty() => Some(s),
            _ => None,
        })
        .expect("property site has feedback");
    assert_eq!(site.maps.len(), 1, "monomorphic");
    assert!(site.hits >= 18);
}

#[test]
fn profiling_mode_builds_class_list() {
    let mut vm = Vm::new(EngineConfig {
        mechanism: Mechanism::ProfileOnly,
        ..EngineConfig::default()
    });
    let mut sink = NullSink::new();
    vm.run_program(
        "function Point(x, y) { this.x = x; this.y = y; }
         var pts = [];
         for (var i = 0; i < 10; i++) pts.push(new Point(i, i * 2));
         var s = 0;
         for (var j = 0; j < 10; j++) s += pts[j].x;",
        &mut sink,
    )
    .unwrap();
    // The Point classes' x slot (offset 1) is profiled SMI-monomorphic.
    let a = vm.global_value("pts").unwrap();
    let p0 = vm.rt.load_element(a, 0).value;
    let map = vm.rt.object_map(p0);
    let x = vm.rt.names.lookup("x").unwrap();
    let intro = vm.rt.maps.introducer_of(map, x).unwrap();
    let off = vm.rt.maps.get(map).offset_of(x).unwrap();
    let agg = vm.aggregated_monomorphic_class(intro, (off / 8) as u8, (off % 8) as u8);
    assert_eq!(agg, Some(checkelide_core::ClassId::SMI));
    // The array's elements profile records the Point class.
    let arr_map = vm.rt.object_map(a);
    let arr_cid = vm.rt.maps.get(arr_map).class_id.unwrap();
    let point_cid = vm.rt.maps.get(map).class_id.unwrap();
    assert_eq!(
        vm.class_list.monomorphic_class(arr_cid, 0, checkelide_core::ELEMENTS_SLOT),
        Some(point_cid)
    );
    // Load stats saw both property and elements loads.
    assert!(vm.load_stats.total() > 0);
}

#[test]
fn full_mechanism_baseline_profiles_through_class_cache() {
    let mut vm = Vm::new(EngineConfig {
        mechanism: Mechanism::Full,
        opt_enabled: false,
        ..EngineConfig::default()
    });
    let mut sink = CounterSink::new();
    vm.run_program(
        "function T(v) { this.v = v; }
         var s = 0;
         for (var i = 0; i < 50; i++) { var t = new T(i); t.v = i + 1; s += t.v; }",
        &mut sink,
    )
    .unwrap();
    assert_eq!(vm.global_value("s").unwrap().as_smi(), (1..=50).sum::<i32>());
    let st = vm.class_cache.stats();
    assert!(st.accesses >= 100, "two profiled stores per iteration, got {}", st.accesses);
    assert!(st.hit_rate() > 0.9, "hit rate {}", st.hit_rate());
    assert!(sink.total() > 0);
}

#[test]
fn gc_survives_heavy_allocation() {
    let mut vm = Vm::new(EngineConfig {
        gc_threshold_words: 20_000,
        ..EngineConfig::default()
    });
    let mut sink = NullSink::new();
    vm.run_program(
        "function Node(v) { this.v = v; this.next = null; }
         var keep = new Node(0);
         var sum = 0;
         for (var i = 0; i < 20000; i++) {
             var n = new Node(i);
             n.next = new Node(i * 2);
             sum += n.v + n.next.v;  // garbage after this iteration
         }
         keep.v = 42;
         var r = keep.v;",
        &mut sink,
    )
    .unwrap();
    assert!(vm.stats.gc_runs > 0, "GC must have run");
    assert_eq!(vm.global_value("r").unwrap().as_smi(), 42);
    let expected: i64 = (0..20000i64).map(|i| i + i * 2).sum();
    assert_eq!(vm.rt.to_f64(vm.global_value("sum").unwrap()), expected as f64);
}

#[test]
fn runtime_errors_are_reported() {
    let mut vm = Vm::new(EngineConfig::default());
    let mut sink = NullSink::new();
    let err = vm.run_program("var x = null; x.y;", &mut sink).unwrap_err();
    assert!(err.message.contains("cannot read property"), "{err}");
    let mut vm = Vm::new(EngineConfig::default());
    let err = vm.run_program("nothing();", &mut sink).unwrap_err();
    assert!(err.message.contains("not a function"), "{err}");
}

#[test]
fn print_builtin() {
    let _ = checkelide_runtime::take_output();
    run("print('answer', 42);");
    assert_eq!(checkelide_runtime::take_output(), vec!["answer 42"]);
}

#[test]
fn elements_kind_transition_preserves_values() {
    let (vm, _) = run(
        "var a = [1, 2];
         a[2] = 3.5;       // Smi -> Double
         var x = a[0] + a[2];
         a[3] = 'str';     // Double -> Tagged
         var y = a[1];
         var z = a[3];",
    );
    assert_eq!(vm.rt.to_f64(vm.global_value("x").unwrap()), 4.5);
    assert_eq!(vm.global_value("y").unwrap().as_smi(), 2);
    let z = vm.global_value("z").unwrap();
    assert_eq!(vm.rt.to_display_string(z), "str");
}

#[test]
fn update_expressions_postfix_and_prefix() {
    assert_eq!(eval_num("(function() { var i = 5; var a = i++; return a * 100 + i; })()"), 506.0);
    assert_eq!(eval_num("(function() { var i = 5; var a = ++i; return a * 100 + i; })()"), 606.0);
    let (vm, _) = run("var o = { n: 1 }; var a = o.n++; var b = o.n;");
    assert_eq!(vm.global_value("a").unwrap().as_smi(), 1);
    assert_eq!(vm.global_value("b").unwrap().as_smi(), 2);
    let (vm, _) = run("var arr = [7]; var a = arr[0]--; var b = arr[0];");
    assert_eq!(vm.global_value("a").unwrap().as_smi(), 7);
    assert_eq!(vm.global_value("b").unwrap().as_smi(), 6);
}

#[test]
fn compound_assignment_on_members() {
    let (vm, _) = run("var o = { n: 10 }; o.n += 5; o.n *= 2; var r = o.n;");
    assert_eq!(vm.global_value("r").unwrap().as_smi(), 30);
    let (vm, _) = run("var a = [1, 2]; a[0] += 9; a[1] <<= 3; var r = a[0] * 100 + a[1];");
    assert_eq!(vm.global_value("r").unwrap().as_smi(), 1016);
}

#[test]
fn string_char_indexing() {
    let (vm, _) = run("var s = 'abc'; var c = s[1];");
    let c = vm.global_value("c").unwrap();
    assert_eq!(vm.rt.to_display_string(c), "b");
}

#[test]
fn function_expressions_work() {
    assert_eq!(eval_num("(function(a, b) { return a * b; })(6, 7)"), 42.0);
    let (vm, _) = run("var f = function(x) { return x + 1; }; var r = f(4);");
    assert_eq!(vm.global_value("r").unwrap().as_smi(), 5);
}

#[test]
fn global_functions_call_each_other() {
    let (vm, _) = run(
        "function a(n) { return n <= 0 ? 0 : b(n - 1) + 1; }
         function b(n) { return n <= 0 ? 0 : a(n - 1) + 1; }
         var r = a(9);",
    );
    assert_eq!(vm.global_value("r").unwrap().as_smi(), 9);
}

#[test]
fn parse_int_and_float_globals() {
    assert_eq!(eval_num("parseInt('42')"), 42.0);
    assert_eq!(eval_num("parseFloat('2.5x')"), 2.5);
}

#[test]
fn deterministic_across_runs() {
    let src = "function W() { this.v = Math.random(); }
               var s = 0;
               for (var i = 0; i < 100; i++) s += new W().v;
               var r = s;";
    let a = {
        let (vm, _) = run(src);
        let v = vm.global_value("r").unwrap();
        vm.rt.to_f64(v)
    };
    let b = {
        let (vm, _) = run(src);
        let v = vm.global_value("r").unwrap();
        vm.rt.to_f64(v)
    };
    assert_eq!(a, b);
}

//! The virtual machine: function table, globals, tiering, GC safepoints,
//! deoptimization, and the Class Cache mechanism wiring shared by both
//! execution tiers.

use crate::bytecode::BytecodeFunc;
use crate::compile::{compile_function, CompileEnv};
use crate::emit::{stubs, Emitter};
use crate::feedback::FeedbackSlot;
use checkelide_core::{
    classlist::ELEMENTS_SLOT, ClassCache, ClassCacheConfig, ClassId, ClassList, FuncId,
    LoadAccessStats, MisspeculationException, SpecialRegs, StoreOutcome, StoreRequest,
};
use checkelide_isa::layout::{class_list_entry_addr, BASELINE_CODE_BASE, STACK_BASE};
use checkelide_isa::uop::{Category, MemRef, Region, Tok, Uop, UopKind};
use checkelide_isa::{BatchSink, TraceSink};
use checkelide_lang::{parse_program, FuncDecl, ParseError};
use checkelide_runtime::{
    Builtin, ElemKind, FuncRef, MapIx, NameId, Runtime, Value,
};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Simulated base address of the globals table.
pub const GLOBALS_BASE: u64 = 0x0000_7e00_0000;
/// Simulated bytes of generated baseline code per function.
pub const CODE_STRIDE: u64 = 0x8000;

/// How much of the paper's mechanism is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Plain V8 model: no Class List, no profiling (the Figure 8/9
    /// baseline).
    Off,
    /// Class List updated by invisible instrumentation; no new
    /// instructions, no elision (the Figure 1–3 characterization runs).
    ProfileOnly,
    /// Full HW/SW mechanism: special store instructions, Class Cache
    /// traffic, check elision, misspeculation exceptions.
    Full,
}

impl Mechanism {
    /// Whether the Class List is being maintained.
    pub fn profiles(self) -> bool {
        !matches!(self, Mechanism::Off)
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Mechanism mode.
    pub mechanism: Mechanism,
    /// Whether the optimizing tier is enabled at all.
    pub opt_enabled: bool,
    /// Invocations before a function is optimized.
    pub opt_threshold: u32,
    /// GC trigger: words allocated since the last collection.
    pub gc_threshold_words: u64,
    /// Deopts after which a function stays in the baseline tier.
    pub max_deopts: u32,
    /// Class Cache geometry.
    pub class_cache: ClassCacheConfig,
    /// Software check elision via lazy basic-block versioning: the
    /// optimizing tier specializes block versions on typed contexts
    /// (locals/operand tags + known maps established by dominating
    /// checks) instead of — or in addition to — the hardware Class
    /// Cache profile. Orthogonal to [`Mechanism`]: `bbv` alone is the
    /// pure-software competitor, `bbv` + [`Mechanism::Full`] is the
    /// combined configuration.
    pub bbv: bool,
    /// Execution step budget: the VM aborts with a `step budget
    /// exceeded` runtime error after this many interpreted bytecodes /
    /// optimized ops. `0` means unlimited. Differential harnesses set
    /// this so candidate programs with runaway loops terminate
    /// deterministically instead of hanging the oracle.
    pub step_budget: u64,
    /// Region execution tier (tier 3). When enabled, an optimized
    /// function whose activation count exceeds [`region_threshold`]
    /// has its plans compiled into direct-threaded regions held in the
    /// per-VM managed code cache. Byte-identical to the plan-walking
    /// tier by construction; `CHECKELIDE_SCALAR_EXEC=1` forces the
    /// plan-walking reference regardless of this flag.
    ///
    /// [`region_threshold`]: EngineConfig::region_threshold
    pub regions: bool,
    /// Plan-walking activations of an optimized body before it tiers
    /// up to compiled regions (`1` = tier up after one activation).
    pub region_threshold: u32,
    /// Managed code-cache capacity in accounted bytes. When an insert
    /// pushes occupancy past this bound the least-recently-used region
    /// sets are evicted (the newest entry is always retained, so a
    /// single oversized function still runs tiered).
    pub code_cache_bytes: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mechanism: Mechanism::Off,
            opt_enabled: true,
            opt_threshold: 6,
            gc_threshold_words: 6 << 20,
            max_deopts: 8,
            class_cache: ClassCacheConfig::default(),
            bbv: false,
            step_budget: 0,
            regions: true,
            region_threshold: 2,
            code_cache_bytes: 16 << 20,
        }
    }
}

/// Error message produced when [`EngineConfig::step_budget`] runs out.
/// Shared with the reference interpreter so a runaway program produces
/// the *same* observable under every executor.
pub const STEP_BUDGET_MSG: &str = "step budget exceeded";

/// A runtime error (njs has no exception system; errors abort execution).
#[derive(Debug, Clone, PartialEq)]
pub struct VmError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for VmError {}

impl VmError {
    /// Construct from anything printable.
    pub fn new(message: impl Into<String>) -> VmError {
        VmError { message: message.into() }
    }
}

/// Why optimized code bailed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeoptReason {
    /// A Check Map failed.
    CheckMap,
    /// A Check SMI failed.
    CheckSmi,
    /// A Check Non-SMI failed.
    CheckNonSmi,
    /// SMI arithmetic overflowed (math assumption).
    Overflow,
    /// Element access outside the specialized fast path.
    Elements,
    /// The running function was deoptimized by a misspeculation
    /// exception or by another function's deopt (epoch bump).
    Invalidated,
    /// Unspecialized situation (megamorphic site reached etc.).
    Generic,
}

/// State handed from bailing optimized code back to the interpreter.
#[derive(Debug, Clone)]
pub struct DeoptState {
    /// Bytecode index to resume at.
    pub bc_pc: u32,
    /// Reconstructed locals.
    pub locals: Vec<Value>,
    /// Reconstructed operand stack.
    pub stack: Vec<Value>,
    /// Why.
    pub reason: DeoptReason,
}

/// Result of running optimized code.
#[derive(Debug)]
pub enum ExecResult {
    /// Normal completion.
    Return(Value),
    /// Bail out to the interpreter.
    Deopt(DeoptState),
    /// A nested call returned an error.
    Error(VmError),
}

/// Optimized code installed on a function.
pub trait OptimizedCode {
    /// Execute with the given receiver and arguments.
    fn execute(
        &self,
        vm: &mut Vm,
        sink: &mut BatchSink<'_>,
        this: Value,
        args: &[Value],
    ) -> ExecResult;

    /// Dynamic count of check µops this code elided thanks to the Class
    /// Cache profile (static metadata; for reporting).
    fn elided_check_sites(&self) -> u32 {
        0
    }
}

/// Outcome of an optimization attempt.
pub enum CompileOutcome {
    /// Code ready to install.
    Code(Rc<dyn OptimizedCode>),
    /// Not enough feedback yet; retry later.
    Defer,
    /// Give up on this function permanently.
    Bail,
}

/// The optimizing compiler, supplied by `checkelide-opt`.
pub trait OptimizerHook {
    /// Compile `func`, reading feedback and (in Full mode) registering
    /// speculations in the Class List.
    fn compile(&self, vm: &mut Vm, func: u32) -> CompileOutcome;
}

/// Per-function state.
pub struct FunctionInfo {
    /// Source AST.
    pub decl: Rc<FuncDecl>,
    /// Lazily compiled bytecode.
    pub bytecode: Option<Rc<BytecodeFunc>>,
    /// Feedback vector (parallel to bytecode feedback slots).
    pub feedback: Vec<FeedbackSlot>,
    /// Call count (tier-up trigger).
    pub invocations: u32,
    /// Installed optimized code.
    pub optimized: Option<Rc<dyn OptimizedCode>>,
    /// Permanently stuck in baseline after too many deopts.
    pub opt_disabled: bool,
    /// Deopt events so far.
    pub deopt_count: u32,
    /// Bumped on every deopt; running optimized code checks it.
    pub deopt_epoch: u32,
    /// Compiled with top-level (global-scope) semantics.
    pub is_main: bool,
    /// Initial hidden class when used as a constructor.
    pub initial_map: Option<MapIx>,
    /// Slack tracking: lines to preallocate for `new` (learned).
    pub expected_lines: u8,
    /// Allocation-site elements-kind feedback: the most general elements
    /// kind this constructor's objects have reached (V8's allocation-site
    /// tracking). `new` pre-transitions the initial map accordingly so hot
    /// code never sees the kind ramp.
    pub expected_elem_kind: ElemKind,
    /// Cached function object.
    pub func_value: Option<Value>,
    /// Reentrancy guard during optimization.
    pub compiling: bool,
}

impl fmt::Debug for FunctionInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionInfo")
            .field("name", &self.decl.name)
            .field("invocations", &self.invocations)
            .field("optimized", &self.optimized.is_some())
            .field("deopt_count", &self.deopt_count)
            .finish()
    }
}

/// An interpreter frame (shadow stack — also the GC root set).
#[derive(Debug, Clone)]
pub struct Frame {
    /// Function index.
    pub func: u32,
    /// Receiver.
    pub this: Value,
    /// Locals (params first).
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
    /// Dataflow tokens mirroring `stack`.
    pub toks: Vec<Tok>,
    /// Dataflow tokens mirroring `locals`.
    pub local_toks: Vec<Tok>,
}

/// Aggregate VM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmStats {
    /// User-function calls.
    pub calls: u64,
    /// Entries into optimized code.
    pub opt_entries: u64,
    /// Deoptimization events (check failures + invalidations).
    pub deopts: u64,
    /// Misspeculation exceptions raised by the Class Cache.
    pub misspec_exceptions: u64,
    /// IC hits / misses in the baseline tier.
    pub ic_hits: u64,
    /// IC misses.
    pub ic_misses: u64,
    /// GC runs.
    pub gc_runs: u64,
    /// Property accesses to line 0 vs. later lines (§5.3.4: 79 % hit
    /// line 0).
    pub line0_accesses: u64,
    /// Property accesses beyond line 0.
    pub linen_accesses: u64,
    /// Basic-block versions materialized by the BBV tier (0 unless
    /// [`EngineConfig::bbv`]). Cumulative warm-up state, like hidden
    /// classes: the bench runner carries it across the steady-state
    /// statistics reset.
    pub bbv_versions: u64,
    /// BBV version-cap fallbacks to the generic block version.
    pub bbv_cap_fallbacks: u64,
    /// Regions compiled into the managed code cache (cumulative; a
    /// recompile after eviction counts again). Cumulative warm-up
    /// state, carried across the steady-state reset like
    /// [`bbv_versions`](VmStats::bbv_versions).
    pub regions_compiled: u64,
    /// Function-level tier-ups from plan-walking to compiled regions
    /// (one per region-set compilation). Cumulative warm-up state.
    pub tier_up_events: u64,
    /// Current managed code-cache occupancy in accounted bytes
    /// (a gauge, not a counter; carried across the steady-state reset).
    pub code_cache_bytes: u64,
    /// Region sets evicted from the code cache under capacity
    /// pressure. Cumulative warm-up state.
    pub evictions: u64,
    /// Deopts that exited compiled-region code (bridged back to the
    /// interpreter from tier 3 rather than from the plan walker).
    pub deopt_bridges: u64,
}

/// The virtual machine.
/// One optimized activation's pooled register file (see
/// [`Vm::exec_scratch`]).
#[derive(Debug, Default)]
pub struct ExecScratch {
    /// Local slots.
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
    /// Operand-stack dataflow tokens.
    pub stoks: Vec<Tok>,
    /// Local-slot dataflow tokens.
    pub ltoks: Vec<Tok>,
}

pub struct Vm {
    /// Object model.
    pub rt: Runtime,
    /// Configuration (fixed per VM).
    pub config: EngineConfig,
    /// Function table.
    pub funcs: Vec<FunctionInfo>,
    /// Global values.
    pub globals: Vec<Value>,
    global_names: HashMap<String, u32>,
    /// Global names by index.
    pub global_name_list: Vec<String>,
    /// The software Class List (§4.2.1.1).
    pub class_list: ClassList,
    /// The hardware Class Cache (§4.2.1.3).
    pub class_cache: ClassCache,
    /// The special registers (§4.2.1.2).
    pub special_regs: SpecialRegs,
    /// Object-load accounting for Figure 3.
    pub load_stats: LoadAccessStats,
    /// Interpreter shadow stack.
    pub frames: Vec<Frame>,
    /// Recycled interpreter frames: per-call locals/stack/token vectors
    /// are reused across activations instead of reallocated.
    frame_pool: Vec<Frame>,
    /// Tagged vreg files of active optimized activations (GC roots).
    pub opt_frames: Vec<Vec<Value>>,
    /// Recycled optimized-activation register files: the opt tier's
    /// per-call locals/stack/token vectors, reused across activations
    /// instead of reallocated (four heap allocations per optimized
    /// call otherwise). Pooled contents are dead values — never GC
    /// roots — and are cleared before reuse.
    pub exec_scratch: Vec<ExecScratch>,
    /// Transition-tree root → constructor function (for allocation-site
    /// elements-kind feedback).
    pub ctor_of_root: HashMap<MapIx, u32>,
    /// Classes that have been recorded as *value* classes in some profile
    /// slot. A later transition away from such a class must invalidate
    /// the slots recording it (in-place class mutation; see DESIGN.md).
    value_profiled: [bool; 256],
    /// Statistics.
    pub stats: VmStats,
    optimizer: Option<Rc<dyn OptimizerHook>>,
    /// Recursion depth guard.
    pub depth: u32,
    /// Steps left before the VM aborts (`u64::MAX` when
    /// [`EngineConfig::step_budget`] is `0`, i.e. unlimited).
    pub steps_remaining: u64,
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("funcs", &self.funcs.len())
            .field("globals", &self.globals.len())
            .field("mechanism", &self.config.mechanism)
            .finish()
    }
}

impl Vm {
    /// Build a VM and install the standard globals (`Math`, `String`,
    /// `print`, `parseInt`, `parseFloat`).
    pub fn new(config: EngineConfig) -> Vm {
        // Fresh token namespace: keeps the emitted trace byte-identical
        // across repeated runs in one process (see `emit::reset_token_namespace`).
        crate::emit::reset_token_namespace();
        let mut vm = Vm {
            rt: Runtime::new(),
            config,
            funcs: Vec::new(),
            globals: Vec::new(),
            global_names: HashMap::new(),
            global_name_list: Vec::new(),
            class_list: ClassList::new(),
            class_cache: ClassCache::new(config.class_cache),
            special_regs: SpecialRegs::new(),
            load_stats: LoadAccessStats::new(),
            frames: Vec::new(),
            frame_pool: Vec::new(),
            opt_frames: Vec::new(),
            exec_scratch: Vec::new(),
            ctor_of_root: HashMap::new(),
            value_profiled: [false; 256],
            stats: VmStats::default(),
            optimizer: None,
            depth: 0,
            steps_remaining: if config.step_budget == 0 { u64::MAX } else { config.step_budget },
        };
        vm.install_globals();
        vm
    }

    /// Install the optimizing tier.
    pub fn set_optimizer(&mut self, opt: Rc<dyn OptimizerHook>) {
        self.optimizer = Some(opt);
    }

    fn install_globals(&mut self) {
        // Math object.
        let math_map = self.rt.maps.new_constructor_root("Math");
        let math = self.rt.alloc_object(math_map, 3);
        for &b in Builtin::math_members() {
            let name = self.rt.names.intern(b.name());
            let f = self.rt.alloc_function(FuncRef::Builtin(b));
            let add = self.rt.add_property(math, name);
            debug_assert!(add.relocated.is_none(), "Math preallocated with 3 lines");
            self.rt.store_slot(math, add.offset, f);
        }
        let g = self.global_ix("Math");
        self.globals[g as usize] = math;

        // String object (fromCharCode).
        let string_map = self.rt.maps.new_constructor_root("String");
        let string_obj = self.rt.alloc_object(string_map, 1);
        let name = self.rt.names.intern("fromCharCode");
        let f = self.rt.alloc_function(FuncRef::Builtin(Builtin::StringFromCharCode));
        let add = self.rt.add_property(string_obj, name);
        self.rt.store_slot(string_obj, add.offset, f);
        let g = self.global_ix("String");
        self.globals[g as usize] = string_obj;

        // Global functions.
        for (n, b) in
            [("print", Builtin::Print), ("parseInt", Builtin::ParseInt), ("parseFloat", Builtin::ParseFloat)]
        {
            let f = self.rt.alloc_function(FuncRef::Builtin(b));
            let g = self.global_ix(n);
            self.globals[g as usize] = f;
        }
    }

    // ----- program loading -----

    /// Parse and run a whole program in the global scope. Returns the last
    /// `return` value of the top-level code (or `undefined`).
    ///
    /// # Errors
    ///
    /// Parse errors and runtime errors.
    pub fn run_program(
        &mut self,
        src: &str,
        sink: &mut dyn TraceSink,
    ) -> Result<Value, VmError> {
        let main = self.load_program(src).map_err(|e| VmError::new(e.to_string()))?;
        let undef = self.rt.odd.undefined;
        // Cross the `dyn` boundary once: everything below threads the
        // concrete `BatchSink`, and µops reach `sink` in batches.
        let mut batch = BatchSink::new(sink);
        let r = self.call_user(&mut batch, main, undef, &[]);
        batch.flush();
        r
    }

    /// Parse a program and register its top level as a function; returns
    /// the function index (call it to (re-)run the top level).
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn load_program(&mut self, src: &str) -> Result<u32, ParseError> {
        let program = parse_program(src)?;
        let decl = Rc::new(FuncDecl {
            name: "<main>".into(),
            params: vec![],
            body: program.body,
            line: 1,
        });
        Ok(self.register_main(decl))
    }

    fn register_main(&mut self, decl: Rc<FuncDecl>) -> u32 {
        let ix = self.register_function(decl);
        self.funcs[ix as usize].is_main = true;
        ix
    }

    /// Call a global function by name (the harness entry point).
    ///
    /// # Errors
    ///
    /// Runtime errors, or an error when the global is not callable.
    pub fn call_global(
        &mut self,
        name: &str,
        args: &[Value],
        sink: &mut dyn TraceSink,
    ) -> Result<Value, VmError> {
        let g = self
            .global_names
            .get(name)
            .copied()
            .ok_or_else(|| VmError::new(format!("no global `{name}`")))?;
        let callee = self.globals[g as usize];
        let undef = self.rt.odd.undefined;
        let mut batch = BatchSink::new(sink);
        let r = self.call_value(&mut batch, callee, undef, args);
        batch.flush();
        r
    }

    /// The (cached) function object for a function-table entry.
    pub fn function_value(&mut self, ix: u32) -> Value {
        if let Some(v) = self.funcs[ix as usize].func_value {
            return v;
        }
        let v = self.rt.alloc_function(FuncRef::User(ix));
        self.funcs[ix as usize].func_value = Some(v);
        v
    }

    /// Resolve (or create) a global slot.
    pub fn global_ix(&mut self, name: &str) -> u32 {
        if let Some(&ix) = self.global_names.get(name) {
            return ix;
        }
        let ix = self.globals.len() as u32;
        self.globals.push(self.rt.odd.undefined);
        self.global_names.insert(name.to_string(), ix);
        self.global_name_list.push(name.to_string());
        ix
    }

    /// Simulated address of a global slot.
    pub fn global_addr(ix: u32) -> u64 {
        GLOBALS_BASE + ix as u64 * 8
    }

    /// Simulated address of a local slot in the current frame.
    pub fn local_addr(&self, local: u16) -> u64 {
        let depth = self.frames.len() as u64;
        STACK_BASE + depth * 0x800 + local as u64 * 8
    }

    /// Baseline code base for a function.
    pub fn code_base(func: u32) -> u64 {
        BASELINE_CODE_BASE + func as u64 * CODE_STRIDE
    }

    /// Ensure a function's bytecode exists.
    pub fn ensure_bytecode(&mut self, func: u32) -> Rc<BytecodeFunc> {
        if let Some(bc) = &self.funcs[func as usize].bytecode {
            return bc.clone();
        }
        let decl = self.funcs[func as usize].decl.clone();
        let global_scope = self.funcs[func as usize].is_main;
        let (bc, feedback) = compile_function(self, &decl, global_scope);
        let bc = Rc::new(bc);
        self.funcs[func as usize].bytecode = Some(bc.clone());
        self.funcs[func as usize].feedback = feedback;
        bc
    }

    // ----- calls -----

    /// Call an arbitrary callee value.
    ///
    /// # Errors
    ///
    /// `VmError` when the callee is not a function or the call fails.
    pub fn call_value(
        &mut self,
        sink: &mut BatchSink<'_>,
        callee: Value,
        this: Value,
        args: &[Value],
    ) -> Result<Value, VmError> {
        if callee.is_smi() || !matches!(self.rt.kind_of(callee), checkelide_runtime::VKind::Func)
        {
            return Err(VmError::new("callee is not a function"));
        }
        match self.rt.func_ref(callee) {
            FuncRef::Builtin(b) => Ok(self.call_builtin_traced(sink, b, this, args)),
            FuncRef::User(f) => self.call_user(sink, f, this, args),
        }
    }

    /// Invoke a builtin, charging its µop cost.
    pub fn call_builtin_traced(
        &mut self,
        sink: &mut BatchSink<'_>,
        b: Builtin,
        this: Value,
        args: &[Value],
    ) -> Value {
        let mut em = Emitter::new(Region::Runtime);
        em.at(stubs::BUILTIN + (b as u64) * 0x40);
        let (alu, mem) = builtin_cost(b);
        em.stub_call(sink, stubs::BUILTIN + (b as u64) * 0x40, alu, mem);
        checkelide_runtime::call_builtin(&mut self.rt, b, this, args)
    }

    /// Call a user function, dispatching to optimized code when installed
    /// and handling tier-up and deoptimization.
    ///
    /// # Errors
    ///
    /// Runtime errors from the function body.
    pub fn call_user(
        &mut self,
        sink: &mut BatchSink<'_>,
        func: u32,
        this: Value,
        args: &[Value],
    ) -> Result<Value, VmError> {
        // The guard must trip before the *native* stack does: each njs
        // frame costs several Rust frames, which are much larger without
        // optimizations.
        let limit = if cfg!(debug_assertions) { 120 } else { 800 };
        if self.depth >= limit {
            return Err(VmError::new("stack overflow"));
        }
        self.depth += 1;
        let result = self.call_user_inner(sink, func, this, args);
        self.depth -= 1;
        result
    }

    fn call_user_inner(
        &mut self,
        sink: &mut BatchSink<'_>,
        func: u32,
        this: Value,
        args: &[Value],
    ) -> Result<Value, VmError> {
        self.stats.calls += 1;
        let bc = self.ensure_bytecode(func);
        let info = &mut self.funcs[func as usize];
        info.invocations += 1;
        let should_optimize = self.config.opt_enabled
            && !info.opt_disabled
            && !info.compiling
            && info.optimized.is_none()
            && info.invocations >= self.config.opt_threshold;
        if should_optimize {
            self.maybe_optimize(func);
        }

        self.gc_safepoint(sink, &[this], args);

        if let Some(code) = self.funcs[func as usize].optimized.clone() {
            self.stats.opt_entries += 1;
            match code.execute(self, sink, this, args) {
                ExecResult::Return(v) => return Ok(v),
                ExecResult::Error(e) => return Err(e),
                ExecResult::Deopt(state) => {
                    self.on_deopt(sink, func, state.reason);
                    // Resume in the interpreter at the deopt point. The
                    // reconstructed locals/stack move straight into the
                    // frame (and are recycled into the pool afterwards).
                    let mut frame = self.take_frame(func, this);
                    frame.locals = state.locals;
                    frame.stack = state.stack;
                    return self.interpret(sink, func, &bc, frame, state.bc_pc);
                }
            }
        }

        // Baseline path: a pooled frame, so the per-activation vectors
        // (locals/stack/token mirrors) are recycled instead of allocated.
        let mut frame = self.take_frame(func, this);
        let undef = self.rt.odd.undefined;
        frame.locals.resize(bc.n_locals as usize, undef);
        for (i, &a) in args.iter().take(bc.params as usize).enumerate() {
            frame.locals[i] = a;
        }
        self.interpret(sink, func, &bc, frame, 0)
    }

    /// A recycled (or fresh) interpreter frame with cleared vectors.
    /// Counterpart of [`Vm::recycle_frame`].
    pub(crate) fn take_frame(&mut self, func: u32, this: Value) -> Frame {
        match self.frame_pool.pop() {
            Some(mut f) => {
                f.func = func;
                f.this = this;
                f.locals.clear();
                f.stack.clear();
                f.toks.clear();
                f.local_toks.clear();
                f
            }
            None => Frame {
                func,
                this,
                locals: Vec::with_capacity(16),
                stack: Vec::with_capacity(16),
                toks: Vec::with_capacity(16),
                local_toks: Vec::with_capacity(16),
            },
        }
    }

    /// Return a finished frame's vectors to the pool (bounded, so deep
    /// recursion cannot pin unbounded memory).
    pub(crate) fn recycle_frame(&mut self, frame: Frame) {
        if self.frame_pool.len() < 64 {
            self.frame_pool.push(frame);
        }
    }

    fn maybe_optimize(&mut self, func: u32) {
        let Some(hook) = self.optimizer.clone() else { return };
        self.funcs[func as usize].compiling = true;
        let outcome = hook.compile(self, func);
        self.funcs[func as usize].compiling = false;
        match outcome {
            CompileOutcome::Code(code) => {
                self.funcs[func as usize].optimized = Some(code);
            }
            CompileOutcome::Defer => {
                // Retry after more warm-up.
                self.funcs[func as usize].invocations = 0;
            }
            CompileOutcome::Bail => {
                self.funcs[func as usize].opt_disabled = true;
            }
        }
    }

    /// Record a deopt of `func` and discard its optimized code.
    pub fn on_deopt(&mut self, sink: &mut BatchSink<'_>, func: u32, reason: DeoptReason) {
        self.stats.deopts += 1;
        if std::env::var_os("CHECKELIDE_TRACE_DEOPT").is_some() {
            eprintln!(
                "deopt: {} reason={reason:?} (count {})",
                self.funcs[func as usize].decl.name,
                self.funcs[func as usize].deopt_count + 1
            );
        }
        let mut em = Emitter::new(Region::Runtime);
        em.at(stubs::DEOPT);
        em.stub_call(sink, stubs::DEOPT, 40, 10);
        self.deopt_function(func);
    }

    fn deopt_function(&mut self, func: u32) {
        if func as usize >= self.funcs.len() {
            // Stale registration (possible only in tests that speculate
            // with synthetic function ids).
            self.class_list.remove_function(FuncId(func));
            return;
        }
        let info = &mut self.funcs[func as usize];
        if info.optimized.take().is_some() {
            info.deopt_epoch += 1;
        }
        info.deopt_count += 1;
        info.invocations = 0;
        if info.deopt_count > self.config.max_deopts {
            info.opt_disabled = true;
        }
        self.class_list.remove_function(FuncId(func));
    }

    /// Service a misspeculation exception (§4.2.2): deoptimize every
    /// function in the slot's FunctionList. Returns `true` when
    /// `current` itself was deoptimized (the caller must OSR-out).
    pub fn handle_misspeculation(
        &mut self,
        sink: &mut BatchSink<'_>,
        exc: &MisspeculationException,
        current: Option<u32>,
    ) -> bool {
        self.stats.misspec_exceptions += 1;
        let mut em = Emitter::new(Region::Runtime);
        em.at(stubs::DEOPT);
        em.stub_call(sink, stubs::DEOPT, 60, 15);
        let mut self_deopted = false;
        for f in &exc.functions {
            self.stats.deopts += 1;
            self.deopt_function(f.0);
            if current == Some(f.0) {
                self_deopted = true;
            }
        }
        self_deopted
    }

    /// Current deopt epoch of a function (optimized code snapshots this
    /// and bails when it moves — the paper's on-stack case, §4.2.2).
    pub fn deopt_epoch(&self, func: u32) -> u32 {
        self.funcs[func as usize].deopt_epoch
    }

    /// The map `new` should allocate with for constructor `fi`: the
    /// initial map, pre-transitioned to the allocation-site elements kind.
    pub fn construction_map(&mut self, fi: u32) -> MapIx {
        let initial = match self.funcs[fi as usize].initial_map {
            Some(m) => m,
            None => {
                let label = self.funcs[fi as usize].decl.name.clone();
                let m = self.rt.maps.new_constructor_root(&label);
                self.funcs[fi as usize].initial_map = Some(m);
                self.ctor_of_root.insert(m, fi);
                m
            }
        };
        match self.funcs[fi as usize].expected_elem_kind {
            ElemKind::Smi => initial,
            k => self.rt.maps.transition_elem_kind(initial, k),
        }
    }

    /// Record post-construction feedback (object size and elements kind).
    pub fn record_construction(&mut self, fi: u32, obj: Value) {
        let lines = self.rt.maps.get(self.rt.object_map(obj)).lines();
        let kind = self.rt.elements_kind(obj);
        let info = &mut self.funcs[fi as usize];
        info.expected_lines = info.expected_lines.max(lines);
        info.expected_elem_kind = ElemKind::join(info.expected_elem_kind, kind);
    }

    /// An object's map transitioned away from `old_map` (property
    /// addition or elements-kind change). If objects of the old class were
    /// ever profiled as value classes, every slot recording them must be
    /// invalidated — the object mutated its type in place and no store
    /// will re-verify it. Deoptimizes any functions speculating on those
    /// slots; returns `true` when `current` was among them.
    pub fn note_map_transition(
        &mut self,
        sink: &mut BatchSink<'_>,
        old_map: MapIx,
        current: Option<u32>,
    ) -> bool {
        let Some(cid) = self.rt.maps.get(old_map).class_id else { return false };
        if !self.config.mechanism.profiles() || !self.value_profiled[cid.raw() as usize] {
            return false;
        }
        self.value_profiled[cid.raw() as usize] = false;
        let exceptions = self.class_list.invalidate_value_class(cid);
        let mut self_deopt = false;
        for exc in &exceptions {
            if !exc.functions.is_empty() {
                self_deopt |= self.handle_misspeculation(sink, exc, current);
            }
        }
        self_deopt
    }

    /// Allocation-site feedback at elements-kind transition time (V8
    /// updates the allocation site when the transition happens, which may
    /// be long after the constructor returned): future constructions are
    /// born with the general kind, so hot code never sees the kind ramp.
    pub fn note_kind_transition(
        &mut self,
        sink: &mut BatchSink<'_>,
        new_map: MapIx,
        current: Option<u32>,
    ) -> bool {
        let root = self.rt.maps.root_of(new_map);
        let kind = self.rt.maps.get(new_map).elements_kind;
        if let Some(&fi) = self.ctor_of_root.get(&root) {
            let info = &mut self.funcs[fi as usize];
            info.expected_elem_kind = ElemKind::join(info.expected_elem_kind, kind);
        }
        // A kind transition is also an in-place class change of the array
        // object itself.
        match self.rt.maps.get(new_map).parent {
            Some(old) => self.note_map_transition(sink, old, current),
            None => false,
        }
    }

    // ----- GC -----

    /// Collect garbage if the allocation budget is exhausted. `extra` are
    /// additional roots (receiver/args not yet in a frame).
    pub fn gc_safepoint(&mut self, sink: &mut BatchSink<'_>, extra: &[Value], extra2: &[Value]) {
        if !self.gc_due() {
            return;
        }
        self.collect_garbage(sink, extra, extra2);
    }

    /// Whether the next [`Vm::gc_safepoint`] will actually collect. Lets
    /// callers skip the work of rooting their frame (cloning locals/stack
    /// into [`Vm::opt_frames`]) on the overwhelmingly common no-op path.
    #[inline]
    pub fn gc_due(&self) -> bool {
        self.rt.heap.words_since_gc() >= self.config.gc_threshold_words
    }

    fn collect_garbage(&mut self, sink: &mut BatchSink<'_>, extra: &[Value], extra2: &[Value]) {
        self.stats.gc_runs += 1;
        let mut roots: Vec<Value> = Vec::with_capacity(256);
        roots.extend_from_slice(&self.globals);
        roots.extend_from_slice(extra);
        roots.extend_from_slice(extra2);
        for f in &self.frames {
            roots.push(f.this);
            roots.extend_from_slice(&f.locals);
            roots.extend_from_slice(&f.stack);
        }
        for vf in &self.opt_frames {
            roots.extend_from_slice(vf);
        }
        for info in &self.funcs {
            if let Some(v) = info.func_value {
                roots.push(v);
            }
        }
        let freed = self.rt.collect(&roots);
        // Charge an approximate µop cost for the collection: marking is
        // proportional to live data, sweeping to freed data.
        let live = self.rt.heap.live_words();
        let mut em = Emitter::new(Region::Runtime);
        em.at(stubs::GC);
        let alu = (live / 64).clamp(50, 50_000);
        let mem = (freed / 64).clamp(10, 20_000);
        em.stub_call(sink, stubs::GC, alu, mem);
    }

    /// Fix all VM-held roots after an object relocation.
    pub fn fix_roots(&mut self, old: u64, new: u64) {
        let old_v = Value::ptr(old);
        let new_v = Value::ptr(new);
        let fix = |v: &mut Value| {
            if *v == old_v {
                *v = new_v;
            }
        };
        for g in &mut self.globals {
            fix(g);
        }
        for f in &mut self.frames {
            fix(&mut f.this);
            f.locals.iter_mut().for_each(fix);
            f.stack.iter_mut().for_each(fix);
        }
        for vf in &mut self.opt_frames {
            vf.iter_mut().for_each(fix);
        }
    }

    // ----- the Class Cache protocol (shared by both tiers) -----

    /// Record a property-line access for the §5.3.4 statistic.
    pub fn note_line_access(&mut self, offset: u16) {
        if offset < 8 {
            self.stats.line0_accesses += 1;
        } else {
            self.stats.linen_accesses += 1;
        }
    }

    /// Emit the store for `obj.prop = value` according to the mechanism
    /// mode, including profiling/verification. Returns `true` when the
    /// currently executing function was deoptimized by a misspeculation
    /// exception (the optimized caller must bail out).
    ///
    /// `holder_map` must be the object's map *after* any transition (the
    /// class the hardware sees in the header at store time).
    #[allow(clippy::too_many_arguments)]
    pub fn store_property_profiled(
        &mut self,
        sink: &mut BatchSink<'_>,
        em: &mut Emitter,
        obj: Value,
        holder_map: MapIx,
        offset: u16,
        value: Value,
        current_func: Option<u32>,
    ) -> bool {
        let slot_addr = self.rt.slot_addr(obj, offset);
        let cat = store_cat(em.region());
        match self.config.mechanism {
            Mechanism::Off => {
                em.chain_store(sink, slot_addr, cat);
                false
            }
            Mechanism::ProfileOnly => {
                em.chain_store(sink, slot_addr, cat);
                self.silent_profile(holder_map, offset / 8, offset % 8, value);
                false
            }
            Mechanism::Full => self.full_store(
                sink,
                em,
                slot_addr,
                holder_map,
                (offset / 8) as u8,
                (offset % 8) as u8,
                value,
                current_func,
                false,
                None,
            ),
        }
    }

    /// Emit the store for `obj[i] = value` profiling the elements slot.
    /// `hoisted_reg` is `Some(reg)` when optimized code already loaded the
    /// holder's ClassID into `regArrayObjectClassId[reg]` outside the loop.
    #[allow(clippy::too_many_arguments)]
    pub fn store_element_profiled(
        &mut self,
        sink: &mut BatchSink<'_>,
        em: &mut Emitter,
        holder: Value,
        holder_map: MapIx,
        kind: ElemKind,
        slot_addr: u64,
        value: Value,
        current_func: Option<u32>,
        hoisted_reg: Option<usize>,
    ) -> bool {
        let cat = store_cat(em.region());
        // Double-kind stores are unboxed writes: no class to profile
        // (§4.3: built-in/type-specific stores need no checks).
        if kind == ElemKind::Double {
            em.chain_store(sink, slot_addr, cat);
            return false;
        }
        match self.config.mechanism {
            Mechanism::Off => {
                em.chain_store(sink, slot_addr, cat);
                false
            }
            Mechanism::ProfileOnly => {
                em.chain_store(sink, slot_addr, cat);
                self.silent_profile(holder_map, 0, ELEMENTS_SLOT as u16, value);
                false
            }
            Mechanism::Full => self.full_store(
                sink,
                em,
                slot_addr,
                holder_map,
                0,
                ELEMENTS_SLOT,
                value,
                current_func,
                true,
                Some((holder, hoisted_reg)),
            ),
        }
    }

    fn silent_profile(&mut self, holder_map: MapIx, line: u16, pos: u16, value: Value) {
        let Some(holder) = self.rt.maps.get(holder_map).class_id else { return };
        match self.rt.class_id_of_value(value) {
            Some(stored) => {
                self.value_profiled[stored.raw() as usize] = true;
                let req =
                    StoreRequest { holder, line: line as u8, pos: pos as u8, stored };
                let _ = self.class_list.profile_store(&req);
            }
            None => {
                let _ = self.class_list.force_invalidate(holder, line as u8, pos as u8);
            }
        }
    }

    /// The Full-mechanism store: new instructions + Class Cache traffic.
    #[allow(clippy::too_many_arguments)]
    fn full_store(
        &mut self,
        sink: &mut BatchSink<'_>,
        em: &mut Emitter,
        slot_addr: u64,
        holder_map: MapIx,
        line: u8,
        pos: u8,
        value: Value,
        current_func: Option<u32>,
        is_elements: bool,
        elements_ctx: Option<(Value, Option<usize>)>,
    ) -> bool {
        let cat = store_cat(em.region());
        let Some(holder) = self.rt.maps.get(holder_map).class_id else {
            // Unprofiled class (ClassID space exhausted): ordinary store.
            em.chain_store(sink, slot_addr, cat);
            return false;
        };

        // movClassID: latch the stored value's ClassID (reads the header
        // word of the object unless it is a SMI).
        let stored = match self.rt.class_id_of_value(value) {
            Some(c) => c,
            None => {
                // Stored object's class is unprofilable: the slot cannot
                // stay monomorphic. Invalidate in software.
                em.chain_store(sink, slot_addr, cat);
                match self.class_list.force_invalidate(holder, line, pos) {
                    StoreOutcome::Misspeculation(exc) => {
                        return self.handle_misspeculation(sink, &exc, current_func)
                    }
                    _ => return false,
                }
            }
        };
        self.value_profiled[stored.raw() as usize] = true;
        let mut mov = Uop::new(UopKind::MovClassId, 0, cat, em.region());
        if value.is_ptr() {
            mov.mem = Some(MemRef::load(value.addr()));
        }
        mov.srcs = [em.acc(), Tok::NONE];
        let dst = em.fresh();
        mov.dst = dst;
        em.raw(sink, mov);
        self.special_regs.mov_class_id(stored);

        if is_elements {
            let (holder_obj, hoisted) = elements_ctx.expect("elements ctx");
            match hoisted {
                Some(reg) => {
                    // regArrayObjectClassId[reg] was loaded outside the
                    // loop; nothing to emit here.
                    debug_assert_eq!(self.special_regs.array_class(reg), holder);
                }
                None => {
                    // movClassIDArray: load the holder's header.
                    let mut mca =
                        Uop::new(UopKind::MovClassIdArray, 0, cat, em.region());
                    mca.mem = Some(MemRef::load(holder_obj.addr()));
                    mca.dst = em.fresh();
                    em.raw(sink, mca);
                    self.special_regs.mov_class_id_array(0, holder);
                }
            }
            let mut st =
                Uop::new(UopKind::MovStoreClassCacheArray, 0, cat, em.region());
            st.mem = Some(MemRef::store(slot_addr));
            st.srcs = [em.acc(), dst];
            em.raw(sink, st);
        } else {
            let mut st = Uop::new(UopKind::MovStoreClassCache, 0, cat, em.region());
            st.mem = Some(MemRef::store(slot_addr));
            st.srcs = [em.acc(), dst];
            em.raw(sink, st);
        }

        let req = StoreRequest { holder, line, pos, stored };
        let (outcome, hit) = self.class_cache.store_request_timed(&req, &mut self.class_list);
        if !hit {
            // Class Cache miss: fetch the entry from the in-memory Class
            // List (like a TLB walk).
            let entry_addr = class_list_entry_addr(holder.raw(), line);
            em.chain_load(sink, entry_addr, cat);
            em.chain_load(sink, entry_addr + 8, cat);
        }
        if let StoreOutcome::Misspeculation(exc) = outcome {
            return self.handle_misspeculation(sink, &exc, current_func);
        }
        false
    }

    /// The subtree-aggregated monomorphism query used by the optimizer:
    /// slot `(line, pos)` introduced at `introducer` is monomorphic iff
    /// every map in `introducer`'s transition subtree agrees on one
    /// profiled class (uninitialized entries are fine), with at least one
    /// initialized entry. See DESIGN.md §4 for why the chain walk is
    /// needed.
    pub fn aggregated_monomorphic_class(
        &self,
        introducer: MapIx,
        line: u8,
        pos: u8,
    ) -> Option<ClassId> {
        let mut agreed: Option<ClassId> = None;
        for m in self.rt.maps.subtree(introducer) {
            let Some(cid) = self.rt.maps.get(m).class_id else {
                return None; // unprofiled map in the subtree: bail
            };
            if let Some(entry) = self.class_list.entry(cid, line) {
                let bit = 1u8 << pos;
                if entry.init_map & bit != 0 {
                    if entry.valid_map & bit == 0 {
                        return None;
                    }
                    let c = ClassId::new(entry.props[pos as usize]).unwrap_or(ClassId::SMI);
                    match agreed {
                        None => agreed = Some(c),
                        Some(prev) if prev == c => {}
                        Some(_) => return None,
                    }
                }
            }
        }
        agreed
    }

    /// Register a speculation on every map of the introducer's subtree
    /// (so any store that could break monomorphism raises the exception).
    /// Returns `false` (registering nothing) when the slot is not
    /// aggregately monomorphic.
    pub fn speculate_on(&mut self, introducer: MapIx, line: u8, pos: u8, func: u32) -> bool {
        let Some(class) = self.aggregated_monomorphic_class(introducer, line, pos) else {
            return false;
        };
        for m in self.rt.maps.subtree(introducer) {
            let Some(cid) = self.rt.maps.get(m).class_id else { return false };
            // Seed uninitialized entries with the agreed class so a
            // future first store of a different class is caught.
            let entry = self.class_list.entry_mut(cid, line);
            let bit = 1u8 << pos;
            if entry.init_map & bit == 0 {
                entry.init_map |= bit;
                entry.props[pos as usize] = class.raw();
            }
            let ok = self.class_list.speculate(cid, line, pos, FuncId(func));
            debug_assert!(ok, "slot was checked monomorphic");
        }
        true
    }
}

impl CompileEnv for Vm {
    fn intern(&mut self, name: &str) -> NameId {
        self.rt.names.intern(name)
    }

    fn global_ix(&mut self, name: &str) -> u32 {
        Vm::global_ix(self, name)
    }

    fn register_function(&mut self, decl: Rc<FuncDecl>) -> u32 {
        let ix = self.funcs.len() as u32;
        self.funcs.push(FunctionInfo {
            decl,
            bytecode: None,
            feedback: Vec::new(),
            invocations: 0,
            optimized: None,
            opt_disabled: false,
            deopt_count: 0,
            deopt_epoch: 0,
            is_main: false,
            initial_map: None,
            expected_lines: 1,
            expected_elem_kind: ElemKind::Smi,
            func_value: None,
            compiling: false,
        });
        ix
    }
}

fn store_cat(region: Region) -> Category {
    if region == Region::Optimized {
        Category::OtherOptimized
    } else {
        Category::RestOfCode
    }
}

/// Approximate µop cost (ALU, memory) of each builtin's native body.
pub fn builtin_cost(b: Builtin) -> (u64, u64) {
    use Builtin::*;
    match b {
        MathSqrt => (3, 1),
        MathAbs | MathFloor | MathCeil | MathRound => (3, 1),
        MathSin | MathCos | MathTan | MathAtan | MathAtan2 | MathPow | MathExp | MathLog => {
            (20, 2)
        }
        MathMin | MathMax => (4, 1),
        MathRandom => (6, 0),
        StringFromCharCode => (8, 2),
        CharCodeAt => (4, 2),
        CharAt => (8, 3),
        Substring => (20, 6),
        IndexOf => (30, 10),
        ArrayPush => (6, 2),
        ArrayPop => (5, 2),
        Print => (40, 10),
        ParseInt | ParseFloat => (25, 8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkelide_isa::NullSink;

    #[test]
    fn vm_installs_globals() {
        let mut vm = Vm::new(EngineConfig::default());
        let math = vm.globals[vm.global_names["Math"] as usize];
        assert!(math.is_ptr());
        let sqrt_name = vm.rt.names.intern("sqrt");
        let map = vm.rt.object_map(math);
        assert!(vm.rt.maps.get(map).offset_of(sqrt_name).is_some());
        assert!(vm.global_names.contains_key("print"));
    }

    #[test]
    fn global_ix_is_stable() {
        let mut vm = Vm::new(EngineConfig::default());
        let a = Vm::global_ix(&mut vm, "foo");
        let b = Vm::global_ix(&mut vm, "foo");
        assert_eq!(a, b);
        assert_ne!(Vm::global_ix(&mut vm, "bar"), a);
    }

    #[test]
    fn aggregated_monomorphism_over_subtree() {
        let mut vm = Vm::new(EngineConfig::default());
        vm.config.mechanism = Mechanism::ProfileOnly;
        // root -> m1 (adds x at offset 1) -> m2 (adds y).
        let x = vm.rt.names.intern("x");
        let y = vm.rt.names.intern("y");
        let root = vm.rt.maps.new_constructor_root("T");
        let (m1, off_x) = vm.rt.maps.transition_add_prop(root, x);
        let (m2, _) = vm.rt.maps.transition_add_prop(m1, y);
        // Store of a SMI into x recorded under m1 (construction) …
        vm.silent_profile(m1, 0, off_x, Value::smi(1));
        // … is visible when querying from the introducer (m1) even though
        // live objects have map m2.
        assert_eq!(
            vm.aggregated_monomorphic_class(m1, 0, off_x as u8),
            Some(ClassId::SMI)
        );
        // A conflicting store under m2 kills it.
        let h = vm.rt.make_number(0.5);
        vm.silent_profile(m2, 0, off_x, h);
        assert_eq!(vm.aggregated_monomorphic_class(m1, 0, off_x as u8), None);
    }

    #[test]
    fn speculation_registers_across_subtree_and_detects_breaks() {
        let mut vm = Vm::new(EngineConfig::default());
        vm.config.mechanism = Mechanism::Full;
        let x = vm.rt.names.intern("x");
        let root = vm.rt.maps.new_constructor_root("T");
        let (m1, off_x) = vm.rt.maps.transition_add_prop(root, x);
        let (m2, _) = {
            let y = vm.rt.names.intern("y");
            vm.rt.maps.transition_add_prop(m1, y)
        };
        vm.silent_profile(m1, 0, off_x, Value::smi(1));
        assert!(vm.speculate_on(m1, 0, off_x as u8, 7));
        // A bad store arriving with the *descendant* class m2 must raise.
        let obj = vm.rt.alloc_object(m2, 1);
        let h = vm.rt.make_number(0.5);
        let mut sink = NullSink::new();
        let mut batch = BatchSink::new(&mut sink);
        let mut em = Emitter::new(Region::Optimized);
        let deopted =
            vm.store_property_profiled(&mut batch, &mut em, obj, m2, off_x, h, Some(7));
        assert!(deopted, "self-deopt signalled");
        assert_eq!(vm.stats.misspec_exceptions, 1);
    }

    #[test]
    fn off_mechanism_emits_plain_store_only() {
        let mut vm = Vm::new(EngineConfig::default());
        let root = vm.rt.maps.new_constructor_root("T");
        let obj = vm.rt.alloc_object(root, 1);
        let mut sink = checkelide_isa::trace::VecSink::new();
        let mut batch = BatchSink::new(&mut sink);
        let mut em = Emitter::new(Region::Baseline);
        em.at(0x1000);
        vm.store_property_profiled(&mut batch, &mut em, obj, root, 1, Value::smi(1), None);
        drop(batch);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.uops[0].kind, UopKind::Store);
        assert_eq!(vm.class_cache.stats().accesses, 0);
    }

    #[test]
    fn full_mechanism_emits_new_instructions_and_cache_traffic() {
        let mut vm = Vm::new(EngineConfig { mechanism: Mechanism::Full, ..Default::default() });
        let root = vm.rt.maps.new_constructor_root("T");
        let obj = vm.rt.alloc_object(root, 1);
        let mut sink = checkelide_isa::trace::VecSink::new();
        let mut batch = BatchSink::new(&mut sink);
        let mut em = Emitter::new(Region::Baseline);
        em.at(0x1000);
        vm.store_property_profiled(&mut batch, &mut em, obj, root, 1, Value::smi(1), None);
        drop(batch);
        let kinds: Vec<_> = sink.uops.iter().map(|u| u.kind).collect();
        assert!(kinds.contains(&UopKind::MovClassId));
        assert!(kinds.contains(&UopKind::MovStoreClassCache));
        assert_eq!(vm.class_cache.stats().accesses, 1);
        // First access misses: the Class List fetch emitted two loads.
        assert_eq!(kinds.iter().filter(|k| **k == UopKind::Load).count(), 2);
    }
}

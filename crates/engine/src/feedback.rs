//! Type feedback recorded by the baseline tier's inline caches (§3.2).

use checkelide_runtime::{FuncRef, MapIx, NumPath};

/// Maximum distinct maps an IC remembers before going megamorphic
/// (polymorphic inline cache degree).
pub const MAX_POLYMORPHISM: usize = 4;

/// Inline-cache state for a property / element / method site.
#[derive(Debug, Clone, Default)]
pub struct SiteFeedback {
    /// Receiver maps seen (in first-seen order).
    pub maps: Vec<MapIx>,
    /// Whether the site overflowed [`MAX_POLYMORPHISM`].
    pub megamorphic: bool,
    /// Dynamic hits with a receiver already in `maps` (IC hits).
    pub hits: u64,
    /// Dynamic misses (new map, megamorphic, or non-object receiver).
    pub misses: u64,
}

impl SiteFeedback {
    /// Record a receiver map; returns `true` when this was an IC hit.
    pub fn record(&mut self, map: MapIx) -> bool {
        if self.maps.contains(&map) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.megamorphic {
            return false;
        }
        if self.maps.len() >= MAX_POLYMORPHISM {
            self.megamorphic = true;
            return false;
        }
        self.maps.push(map);
        false
    }

    /// Record a miss that carries no usable map (primitive receiver etc.).
    pub fn record_generic(&mut self) {
        self.misses += 1;
        self.megamorphic = true;
    }

    /// The single map of a monomorphic site.
    pub fn monomorphic_map(&self) -> Option<MapIx> {
        if !self.megamorphic && self.maps.len() == 1 {
            Some(self.maps[0])
        } else {
            None
        }
    }
}

/// Lattice of numeric-operation feedback.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinFeedback {
    /// SMI ⊕ SMI → SMI observed.
    pub smi: bool,
    /// A double path (incl. SMI overflow) observed.
    pub double: bool,
    /// A string path observed.
    pub string: bool,
    /// Oddball/object coercion observed.
    pub generic: bool,
}

impl BinFeedback {
    /// Fold a dynamic path into the lattice.
    pub fn record(&mut self, path: NumPath) {
        match path {
            NumPath::SmiSmi => self.smi = true,
            NumPath::SmiOverflow | NumPath::Double => self.double = true,
            NumPath::Str => self.string = true,
            NumPath::Generic => self.generic = true,
        }
    }

    /// Whether the optimizer may specialize the site to pure SMI.
    pub fn smi_only(&self) -> bool {
        self.smi && !self.double && !self.string && !self.generic
    }

    /// Whether the optimizer may specialize to unboxed doubles
    /// (numbers only).
    pub fn numeric_only(&self) -> bool {
        (self.smi || self.double) && !self.string && !self.generic
    }

    /// Whether anything was recorded at all.
    pub fn observed(&self) -> bool {
        self.smi || self.double || self.string || self.generic
    }
}

/// Call-site feedback.
#[derive(Debug, Clone, Default)]
pub struct CallFeedback {
    /// The single callee seen, while monomorphic.
    pub target: Option<FuncRef>,
    /// More than one callee seen.
    pub polymorphic: bool,
}

impl CallFeedback {
    /// Record a callee.
    pub fn record(&mut self, f: FuncRef) {
        match self.target {
            None => self.target = Some(f),
            Some(t) if t == f => {}
            Some(_) => {
                self.polymorphic = true;
                self.target = None;
            }
        }
    }
}

/// One feedback slot (sites use the variant they need).
#[derive(Debug, Clone)]
pub enum FeedbackSlot {
    /// Property/element/method site.
    Site(SiteFeedback),
    /// Numeric operation site.
    Bin(BinFeedback),
    /// Call site.
    Call(CallFeedback),
}

impl FeedbackSlot {
    /// Access as a site slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot has a different variant.
    pub fn site_mut(&mut self) -> &mut SiteFeedback {
        match self {
            FeedbackSlot::Site(s) => s,
            other => panic!("expected site feedback, found {other:?}"),
        }
    }

    /// Access as a site slot, immutably.
    pub fn site(&self) -> &SiteFeedback {
        match self {
            FeedbackSlot::Site(s) => s,
            other => panic!("expected site feedback, found {other:?}"),
        }
    }

    /// Access as a numeric slot.
    pub fn bin_mut(&mut self) -> &mut BinFeedback {
        match self {
            FeedbackSlot::Bin(b) => b,
            other => panic!("expected binop feedback, found {other:?}"),
        }
    }

    /// Access as a numeric slot, immutably.
    pub fn bin(&self) -> &BinFeedback {
        match self {
            FeedbackSlot::Bin(b) => b,
            other => panic!("expected binop feedback, found {other:?}"),
        }
    }

    /// Access as a call slot.
    pub fn call_mut(&mut self) -> &mut CallFeedback {
        match self {
            FeedbackSlot::Call(c) => c,
            other => panic!("expected call feedback, found {other:?}"),
        }
    }

    /// Access as a call slot, immutably.
    pub fn call(&self) -> &CallFeedback {
        match self {
            FeedbackSlot::Call(c) => c,
            other => panic!("expected call feedback, found {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_feedback_goes_megamorphic() {
        let mut s = SiteFeedback::default();
        assert!(!s.record(MapIx(1)), "first sight is a miss");
        assert!(s.record(MapIx(1)), "second sight hits");
        assert_eq!(s.monomorphic_map(), Some(MapIx(1)));
        for i in 2..=5 {
            s.record(MapIx(i));
        }
        assert!(s.megamorphic);
        assert_eq!(s.monomorphic_map(), None);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn bin_feedback_lattice() {
        let mut b = BinFeedback::default();
        assert!(!b.observed());
        b.record(NumPath::SmiSmi);
        assert!(b.smi_only());
        assert!(b.numeric_only());
        b.record(NumPath::SmiOverflow);
        assert!(!b.smi_only());
        assert!(b.numeric_only());
        b.record(NumPath::Str);
        assert!(!b.numeric_only());
    }

    #[test]
    fn call_feedback_tracks_monomorphism() {
        let mut c = CallFeedback::default();
        c.record(FuncRef::User(1));
        assert_eq!(c.target, Some(FuncRef::User(1)));
        c.record(FuncRef::User(1));
        assert_eq!(c.target, Some(FuncRef::User(1)));
        c.record(FuncRef::User(2));
        assert!(c.polymorphic);
        assert_eq!(c.target, None);
    }
}

//! AST → bytecode compiler.
//!
//! One [`FuncDecl`] compiles to one [`BytecodeFunc`]. Identifier resolution
//! is two-level: function-scoped locals (parameters, hoisted `var`s,
//! hoisted nested function declarations) and globals. njs has no closures
//! over locals, so anything not local is a global.

use crate::bytecode::{Bc, BytecodeFunc, FbIx};
use crate::feedback::{BinFeedback, CallFeedback, FeedbackSlot, SiteFeedback};
use checkelide_lang::{BinOp, Expr, FuncDecl, LogOp, Stmt, UnOp, UpdateOp};
use checkelide_runtime::NameId;
use std::collections::HashMap;
use std::rc::Rc;

/// Services the compiler needs from the embedding VM.
pub trait CompileEnv {
    /// Intern a property/variable name.
    fn intern(&mut self, name: &str) -> NameId;
    /// Resolve (creating if needed) a global's index.
    fn global_ix(&mut self, name: &str) -> u32;
    /// Register a nested function declaration/expression, returning its
    /// function-table index.
    fn register_function(&mut self, decl: Rc<FuncDecl>) -> u32;
}

/// Compile a function declaration. With `global_scope` set (top-level
/// code), `var` declarations and hoisted function declarations target
/// globals instead of locals, matching JavaScript top-level semantics.
pub fn compile_function(
    env: &mut dyn CompileEnv,
    decl: &FuncDecl,
    global_scope: bool,
) -> (BytecodeFunc, Vec<FeedbackSlot>) {
    let mut c = Compiler::new(env, decl, global_scope);
    c.hoist(&decl.body);
    for stmt in &decl.body {
        c.stmt(stmt);
    }
    c.emit(Bc::ReturnUndef);
    c.finish(decl)
}

struct LoopCtx {
    continue_target: Option<u32>,
    break_patches: Vec<usize>,
    continue_patches: Vec<usize>,
}

struct Compiler<'e> {
    env: &'e mut dyn CompileEnv,
    code: Vec<Bc>,
    locals: HashMap<String, u16>,
    n_locals: u16,
    feedback: Vec<FeedbackSlot>,
    strings: Vec<String>,
    string_ix: HashMap<String, u32>,
    loops: Vec<LoopCtx>,
    /// (local index, function-table index) pairs for hoisted declarations.
    hoisted_funcs: Vec<(String, u32)>,
    global_scope: bool,
    depth: i32,
    max_depth: i32,
    temp_pool: Vec<u16>,
}

impl<'e> Compiler<'e> {
    fn new(env: &'e mut dyn CompileEnv, decl: &FuncDecl, global_scope: bool) -> Compiler<'e> {
        let mut c = Compiler {
            env,
            code: Vec::new(),
            locals: HashMap::new(),
            n_locals: 0,
            feedback: Vec::new(),
            strings: Vec::new(),
            string_ix: HashMap::new(),
            loops: Vec::new(),
            hoisted_funcs: Vec::new(),
            global_scope,
            depth: 0,
            max_depth: 0,
            temp_pool: Vec::new(),
        };
        for p in &decl.params {
            c.declare_local(p);
        }
        c
    }

    fn declare_local(&mut self, name: &str) -> u16 {
        if let Some(&ix) = self.locals.get(name) {
            return ix;
        }
        let ix = self.n_locals;
        self.n_locals += 1;
        self.locals.insert(name.to_string(), ix);
        ix
    }

    fn alloc_temp(&mut self) -> u16 {
        if let Some(t) = self.temp_pool.pop() {
            return t;
        }
        let ix = self.n_locals;
        self.n_locals += 1;
        ix
    }

    fn free_temp(&mut self, t: u16) {
        self.temp_pool.push(t);
    }

    /// Hoist `var` declarations and nested function declarations.
    fn hoist(&mut self, body: &[Stmt]) {
        self.hoist_stmts(body);
        // Materialize hoisted function declarations at entry.
        let hoisted = std::mem::take(&mut self.hoisted_funcs);
        for (name, func_ix) in &hoisted {
            self.emit(Bc::LdaFunc(*func_ix));
            match self.locals.get(name.as_str()) {
                Some(&local) => {
                    self.emit(Bc::StLocal(local));
                }
                None => {
                    let g = self.env.global_ix(name);
                    self.emit(Bc::StGlobal(g));
                }
            }
        }
        self.hoisted_funcs = hoisted;
    }

    fn hoist_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.hoist_stmt(s);
        }
    }

    fn hoist_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Var { name, .. }
                if !self.global_scope => {
                    self.declare_local(name);
                }
            Stmt::Function(decl) => {
                if !self.global_scope {
                    self.declare_local(&decl.name);
                }
                let func_ix = self.env.register_function(decl.clone());
                self.hoisted_funcs.push((decl.name.clone(), func_ix));
            }
            Stmt::If { then, els, .. } => {
                self.hoist_stmt(then);
                if let Some(e) = els {
                    self.hoist_stmt(e);
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => self.hoist_stmt(body),
            Stmt::For { init, body, .. } => {
                if let Some(i) = init {
                    self.hoist_stmt(i);
                }
                self.hoist_stmt(body);
            }
            Stmt::Block(b) => self.hoist_stmts(b),
            _ => {}
        }
    }

    fn stack_effect(bc: &Bc, _self_n: ()) -> i32 {
        use Bc::*;
        match bc {
            LdaSmi(_) | LdaNum(_) | LdaStr(_) | LdaTrue | LdaFalse | LdaNull | LdaUndef
            | LdaThis | LdaFunc(_) | LdLocal(_) | LdGlobal(_) | Dup | NewObject => 1,
            StLocal(_) | StGlobal(_) | Pop | Return | JumpIfFalse(_) | JumpIfTrue(_)
            | SetProp(..) | GetElem(_) => -1,
            SetElem(_) => -2,
            Add(_) | Sub(_) | Mul(_) | Div(_) | Mod(_) | BitAnd(_) | BitOr(_) | BitXor(_)
            | Shl(_) | Sar(_) | Shr(_) | TestLt(_) | TestLe(_) | TestGt(_) | TestGe(_)
            | TestEq(_) | TestNe(_) | TestStrictEq(_) | TestStrictNe(_) => -1,
            Neg(_) | BitNot(_) | Not | GetProp(..) | Jump(_) | ReturnUndef | LoopHead => 0,
            Call(n, _) | CallMethod(_, n, _) | New(n, _) => -(*n as i32),
            NewArray(n) => 1 - *n as i32,
        }
    }

    fn emit(&mut self, bc: Bc) -> usize {
        self.depth += Self::stack_effect(&bc, ());
        self.max_depth = self.max_depth.max(self.depth);
        self.code.push(bc);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch_jump(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Bc::Jump(t) | Bc::JumpIfFalse(t) | Bc::JumpIfTrue(t) => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn new_site_fb(&mut self) -> FbIx {
        self.feedback.push(FeedbackSlot::Site(SiteFeedback::default()));
        (self.feedback.len() - 1) as FbIx
    }

    fn new_bin_fb(&mut self) -> FbIx {
        self.feedback.push(FeedbackSlot::Bin(BinFeedback::default()));
        (self.feedback.len() - 1) as FbIx
    }

    fn new_call_fb(&mut self) -> FbIx {
        self.feedback.push(FeedbackSlot::Call(CallFeedback::default()));
        (self.feedback.len() - 1) as FbIx
    }

    fn string_const(&mut self, s: &str) -> u32 {
        if let Some(&ix) = self.string_ix.get(s) {
            return ix;
        }
        let ix = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_ix.insert(s.to_string(), ix);
        ix
    }

    // ----- statements -----

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Var { name, init } => {
                if let Some(e) = init {
                    self.expr(e);
                    match self.locals.get(name.as_str()) {
                        Some(&ix) => {
                            self.emit(Bc::StLocal(ix));
                        }
                        None => {
                            let g = self.env.global_ix(name);
                            self.emit(Bc::StGlobal(g));
                        }
                    }
                }
            }
            Stmt::Expr(e) => {
                self.expr(e);
                self.emit(Bc::Pop);
            }
            Stmt::If { cond, then, els } => {
                self.expr(cond);
                let jf = self.emit(Bc::JumpIfFalse(0));
                self.stmt(then);
                if let Some(e) = els {
                    let jend = self.emit(Bc::Jump(0));
                    let l_else = self.here();
                    self.patch_jump(jf, l_else);
                    self.stmt(e);
                    let l_end = self.here();
                    self.patch_jump(jend, l_end);
                } else {
                    let l_end = self.here();
                    self.patch_jump(jf, l_end);
                }
            }
            Stmt::While { cond, body } => {
                let head = self.here();
                self.emit(Bc::LoopHead);
                self.expr(cond);
                let jf = self.emit(Bc::JumpIfFalse(0));
                self.loops.push(LoopCtx {
                    continue_target: Some(head),
                    break_patches: vec![],
                    continue_patches: vec![],
                });
                self.stmt(body);
                self.emit(Bc::Jump(head));
                let end = self.here();
                self.patch_jump(jf, end);
                let ctx = self.loops.pop().unwrap();
                for p in ctx.break_patches {
                    self.patch_jump(p, end);
                }
            }
            Stmt::DoWhile { body, cond } => {
                let top = self.here();
                self.emit(Bc::LoopHead);
                self.loops.push(LoopCtx {
                    continue_target: None,
                    break_patches: vec![],
                    continue_patches: vec![],
                });
                self.stmt(body);
                let cont = self.here();
                self.expr(cond);
                self.emit(Bc::JumpIfTrue(top));
                let end = self.here();
                let ctx = self.loops.pop().unwrap();
                for p in ctx.break_patches {
                    self.patch_jump(p, end);
                }
                for p in ctx.continue_patches {
                    self.patch_jump(p, cont);
                }
            }
            Stmt::For { init, cond, update, body } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                let head = self.here();
                self.emit(Bc::LoopHead);
                let jf = cond.as_ref().map(|c| {
                    self.expr(c);
                    self.emit(Bc::JumpIfFalse(0))
                });
                self.loops.push(LoopCtx {
                    continue_target: None,
                    break_patches: vec![],
                    continue_patches: vec![],
                });
                self.stmt(body);
                let cont = self.here();
                if let Some(u) = update {
                    self.expr(u);
                    self.emit(Bc::Pop);
                }
                self.emit(Bc::Jump(head));
                let end = self.here();
                if let Some(jf) = jf {
                    self.patch_jump(jf, end);
                }
                let ctx = self.loops.pop().unwrap();
                for p in ctx.break_patches {
                    self.patch_jump(p, end);
                }
                for p in ctx.continue_patches {
                    self.patch_jump(p, cont);
                }
            }
            Stmt::Break => {
                let j = self.emit(Bc::Jump(0));
                let ctx = self.loops.last_mut().expect("break outside loop");
                ctx.break_patches.push(j);
            }
            Stmt::Continue => {
                let target = self.loops.last().expect("continue outside loop").continue_target;
                match target {
                    Some(t) => {
                        self.emit(Bc::Jump(t));
                    }
                    None => {
                        let j = self.emit(Bc::Jump(0));
                        self.loops.last_mut().unwrap().continue_patches.push(j);
                    }
                }
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => {
                        self.expr(e);
                        self.emit(Bc::Return);
                    }
                    None => {
                        self.emit(Bc::ReturnUndef);
                    }
                };
            }
            Stmt::Function(_) => {
                // Hoisted at entry; nothing at the declaration site.
            }
            Stmt::Block(b) => {
                for s in b {
                    self.stmt(s);
                }
            }
            Stmt::Empty => {}
        }
    }

    // ----- expressions -----

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Num(n) => {
                if n.fract() == 0.0
                    && *n >= i32::MIN as f64
                    && *n <= i32::MAX as f64
                    && !(*n == 0.0 && n.is_sign_negative())
                {
                    self.emit(Bc::LdaSmi(*n as i32));
                } else {
                    self.emit(Bc::LdaNum(*n));
                }
            }
            Expr::Str(s) => {
                let ix = self.string_const(s);
                self.emit(Bc::LdaStr(ix));
            }
            Expr::Bool(true) => {
                self.emit(Bc::LdaTrue);
            }
            Expr::Bool(false) => {
                self.emit(Bc::LdaFalse);
            }
            Expr::Null => {
                self.emit(Bc::LdaNull);
            }
            Expr::Undefined => {
                self.emit(Bc::LdaUndef);
            }
            Expr::This => {
                self.emit(Bc::LdaThis);
            }
            Expr::Ident(name) => match self.locals.get(name.as_str()) {
                Some(&ix) => {
                    self.emit(Bc::LdLocal(ix));
                }
                None => {
                    let g = self.env.global_ix(name);
                    self.emit(Bc::LdGlobal(g));
                }
            },
            Expr::Assign { target, op, value } => self.assign(target, *op, value),
            Expr::Binary { op, lhs, rhs } => {
                self.expr(lhs);
                self.expr(rhs);
                self.binop(*op);
            }
            Expr::Logical { op, lhs, rhs } => {
                self.expr(lhs);
                self.emit(Bc::Dup);
                let j = match op {
                    LogOp::And => self.emit(Bc::JumpIfFalse(0)),
                    LogOp::Or => self.emit(Bc::JumpIfTrue(0)),
                };
                self.emit(Bc::Pop);
                self.expr(rhs);
                let end = self.here();
                self.patch_jump(j, end);
                // Both paths leave exactly one value; fix tracked depth.
                self.depth -= 0;
            }
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => {
                    self.expr(expr);
                    let fb = self.new_bin_fb();
                    self.emit(Bc::Neg(fb));
                }
                UnOp::Plus => {
                    // Numeric coercion: x - 0.
                    self.expr(expr);
                    self.emit(Bc::LdaSmi(0));
                    let fb = self.new_bin_fb();
                    self.emit(Bc::Sub(fb));
                }
                UnOp::Not => {
                    self.expr(expr);
                    self.emit(Bc::Not);
                }
                UnOp::BitNot => {
                    self.expr(expr);
                    let fb = self.new_bin_fb();
                    self.emit(Bc::BitNot(fb));
                }
            },
            Expr::Update { op, prefix, target } => self.update(*op, *prefix, target),
            Expr::Cond { cond, then, els } => {
                self.expr(cond);
                let jf = self.emit(Bc::JumpIfFalse(0));
                let depth0 = self.depth;
                self.expr(then);
                let jend = self.emit(Bc::Jump(0));
                let l_else = self.here();
                self.patch_jump(jf, l_else);
                self.depth = depth0;
                self.expr(els);
                let l_end = self.here();
                self.patch_jump(jend, l_end);
            }
            Expr::Call { callee, args } => match &**callee {
                Expr::Member { obj, prop } => {
                    self.expr(obj);
                    for a in args {
                        self.expr(a);
                    }
                    let name = self.env.intern(prop);
                    // Method calls use two adjacent slots: `fb` (site,
                    // receiver maps) and `fb + 1` (call, callee identity).
                    let fb = self.new_site_fb();
                    let _call_fb = self.new_call_fb();
                    self.emit(Bc::CallMethod(name, args.len() as u8, fb));
                }
                other => {
                    self.expr(other);
                    for a in args {
                        self.expr(a);
                    }
                    let fb = self.new_call_fb();
                    self.emit(Bc::Call(args.len() as u8, fb));
                }
            },
            Expr::New { callee, args } => {
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
                let fb = self.new_call_fb();
                self.emit(Bc::New(args.len() as u8, fb));
            }
            Expr::Member { obj, prop } => {
                self.expr(obj);
                let name = self.env.intern(prop);
                let fb = self.new_site_fb();
                self.emit(Bc::GetProp(name, fb));
            }
            Expr::Index { obj, index } => {
                self.expr(obj);
                self.expr(index);
                let fb = self.new_site_fb();
                self.emit(Bc::GetElem(fb));
            }
            Expr::Array(items) => {
                for i in items {
                    self.expr(i);
                }
                self.emit(Bc::NewArray(items.len() as u16));
            }
            Expr::Object(props) => {
                self.emit(Bc::NewObject);
                for (k, v) in props {
                    self.emit(Bc::Dup);
                    self.expr(v);
                    let name = self.env.intern(k);
                    let fb = self.new_site_fb();
                    self.emit(Bc::SetProp(name, fb));
                    self.emit(Bc::Pop);
                }
            }
            Expr::Function(decl) => {
                let ix = self.env.register_function(decl.clone());
                self.emit(Bc::LdaFunc(ix));
            }
        }
    }

    fn binop(&mut self, op: BinOp) {
        let bc = match op {
            BinOp::Add => Bc::Add(self.new_bin_fb()),
            BinOp::Sub => Bc::Sub(self.new_bin_fb()),
            BinOp::Mul => Bc::Mul(self.new_bin_fb()),
            BinOp::Div => Bc::Div(self.new_bin_fb()),
            BinOp::Mod => Bc::Mod(self.new_bin_fb()),
            BinOp::BitAnd => Bc::BitAnd(self.new_bin_fb()),
            BinOp::BitOr => Bc::BitOr(self.new_bin_fb()),
            BinOp::BitXor => Bc::BitXor(self.new_bin_fb()),
            BinOp::Shl => Bc::Shl(self.new_bin_fb()),
            BinOp::Sar => Bc::Sar(self.new_bin_fb()),
            BinOp::Shr => Bc::Shr(self.new_bin_fb()),
            BinOp::Lt => Bc::TestLt(self.new_bin_fb()),
            BinOp::Le => Bc::TestLe(self.new_bin_fb()),
            BinOp::Gt => Bc::TestGt(self.new_bin_fb()),
            BinOp::Ge => Bc::TestGe(self.new_bin_fb()),
            BinOp::Eq => Bc::TestEq(self.new_bin_fb()),
            BinOp::NotEq => Bc::TestNe(self.new_bin_fb()),
            BinOp::StrictEq => Bc::TestStrictEq(self.new_bin_fb()),
            BinOp::StrictNotEq => Bc::TestStrictNe(self.new_bin_fb()),
        };
        self.emit(bc);
    }

    fn assign(&mut self, target: &Expr, op: Option<BinOp>, value: &Expr) {
        match target {
            Expr::Ident(name) => {
                if let Some(op) = op {
                    self.expr(target);
                    self.expr(value);
                    self.binop(op);
                } else {
                    self.expr(value);
                }
                self.emit(Bc::Dup);
                match self.locals.get(name.as_str()) {
                    Some(&ix) => {
                        self.emit(Bc::StLocal(ix));
                    }
                    None => {
                        let g = self.env.global_ix(name);
                        self.emit(Bc::StGlobal(g));
                    }
                }
            }
            Expr::Member { obj, prop } => {
                self.expr(obj);
                if let Some(op) = op {
                    self.emit(Bc::Dup);
                    let name = self.env.intern(prop);
                    let fb = self.new_site_fb();
                    self.emit(Bc::GetProp(name, fb));
                    self.expr(value);
                    self.binop(op);
                } else {
                    self.expr(value);
                }
                let name = self.env.intern(prop);
                let fb = self.new_site_fb();
                self.emit(Bc::SetProp(name, fb));
            }
            Expr::Index { obj, index } => {
                if let Some(op) = op {
                    let t_obj = self.alloc_temp();
                    let t_idx = self.alloc_temp();
                    self.expr(obj);
                    self.emit(Bc::StLocal(t_obj));
                    self.expr(index);
                    self.emit(Bc::StLocal(t_idx));
                    self.emit(Bc::LdLocal(t_obj));
                    self.emit(Bc::LdLocal(t_idx));
                    self.emit(Bc::LdLocal(t_obj));
                    self.emit(Bc::LdLocal(t_idx));
                    let fb = self.new_site_fb();
                    self.emit(Bc::GetElem(fb));
                    self.expr(value);
                    self.binop(op);
                    let fb = self.new_site_fb();
                    self.emit(Bc::SetElem(fb));
                    self.free_temp(t_idx);
                    self.free_temp(t_obj);
                } else {
                    self.expr(obj);
                    self.expr(index);
                    self.expr(value);
                    let fb = self.new_site_fb();
                    self.emit(Bc::SetElem(fb));
                }
            }
            other => panic!("invalid assignment target {other:?} (parser bug)"),
        }
    }

    fn update(&mut self, op: UpdateOp, prefix: bool, target: &Expr) {
        let one = 1;
        let binop = match op {
            UpdateOp::Inc => BinOp::Add,
            UpdateOp::Dec => BinOp::Sub,
        };
        if prefix {
            // ++x  ≡  x = x + 1 (value = new)
            self.assign(target, Some(binop), &Expr::Num(one as f64));
            return;
        }
        // Postfix: value = old. Use temps for the general case.
        match target {
            Expr::Ident(name) => {
                self.expr(target);
                self.emit(Bc::Dup);
                self.emit(Bc::LdaSmi(one));
                self.binop(binop);
                match self.locals.get(name.as_str()) {
                    Some(&ix) => {
                        self.emit(Bc::StLocal(ix));
                    }
                    None => {
                        let g = self.env.global_ix(name);
                        self.emit(Bc::StGlobal(g));
                    }
                }
            }
            Expr::Member { obj, prop } => {
                let t_obj = self.alloc_temp();
                let t_old = self.alloc_temp();
                self.expr(obj);
                self.emit(Bc::StLocal(t_obj));
                self.emit(Bc::LdLocal(t_obj));
                let name = self.env.intern(prop);
                let fb = self.new_site_fb();
                self.emit(Bc::GetProp(name, fb));
                self.emit(Bc::StLocal(t_old));
                self.emit(Bc::LdLocal(t_obj));
                self.emit(Bc::LdLocal(t_old));
                self.emit(Bc::LdaSmi(one));
                self.binop(binop);
                let fb = self.new_site_fb();
                self.emit(Bc::SetProp(name, fb));
                self.emit(Bc::Pop);
                self.emit(Bc::LdLocal(t_old));
                self.free_temp(t_old);
                self.free_temp(t_obj);
            }
            Expr::Index { obj, index } => {
                let t_obj = self.alloc_temp();
                let t_idx = self.alloc_temp();
                let t_old = self.alloc_temp();
                self.expr(obj);
                self.emit(Bc::StLocal(t_obj));
                self.expr(index);
                self.emit(Bc::StLocal(t_idx));
                self.emit(Bc::LdLocal(t_obj));
                self.emit(Bc::LdLocal(t_idx));
                let fb = self.new_site_fb();
                self.emit(Bc::GetElem(fb));
                self.emit(Bc::StLocal(t_old));
                self.emit(Bc::LdLocal(t_obj));
                self.emit(Bc::LdLocal(t_idx));
                self.emit(Bc::LdLocal(t_old));
                self.emit(Bc::LdaSmi(one));
                self.binop(binop);
                let fb = self.new_site_fb();
                self.emit(Bc::SetElem(fb));
                self.emit(Bc::Pop);
                self.emit(Bc::LdLocal(t_old));
                self.free_temp(t_old);
                self.free_temp(t_idx);
                self.free_temp(t_obj);
            }
            other => panic!("invalid update target {other:?} (parser bug)"),
        }
    }

    fn finish(self, decl: &FuncDecl) -> (BytecodeFunc, Vec<FeedbackSlot>) {
        let f = BytecodeFunc {
            name: if decl.name.is_empty() { "<anon>".into() } else { decl.name.clone() },
            params: decl.params.len() as u16,
            n_locals: self.n_locals,
            code: self.code,
            strings: self.strings,
            n_feedback: self.feedback.len() as u32,
            max_stack: self.max_depth.max(0) as u16,
        };
        (f, self.feedback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkelide_lang::parse_program;
    use checkelide_runtime::NameTable;

    struct TestEnv {
        names: NameTable,
        globals: Vec<String>,
        funcs: Vec<Rc<FuncDecl>>,
    }

    impl TestEnv {
        fn new() -> TestEnv {
            TestEnv { names: NameTable::new(), globals: vec![], funcs: vec![] }
        }
    }

    impl CompileEnv for TestEnv {
        fn intern(&mut self, name: &str) -> NameId {
            self.names.intern(name)
        }
        fn global_ix(&mut self, name: &str) -> u32 {
            if let Some(p) = self.globals.iter().position(|g| g == name) {
                return p as u32;
            }
            self.globals.push(name.to_string());
            (self.globals.len() - 1) as u32
        }
        fn register_function(&mut self, decl: Rc<FuncDecl>) -> u32 {
            self.funcs.push(decl);
            (self.funcs.len() - 1) as u32
        }
    }

    fn compile_src(src: &str) -> (BytecodeFunc, Vec<FeedbackSlot>, TestEnv) {
        let p = parse_program(src).unwrap();
        let decl = FuncDecl { name: "<main>".into(), params: vec![], body: p.body, line: 1 };
        let mut env = TestEnv::new();
        let (f, fb) = compile_function(&mut env, &decl, false);
        (f, fb, env)
    }

    #[test]
    fn compiles_arithmetic() {
        let (f, fb, _) = compile_src("var x = 1 + 2 * 3;");
        assert!(f.code.contains(&Bc::LdaSmi(1)));
        assert!(matches!(f.code[3], Bc::Mul(_)));
        assert!(matches!(f.code[4], Bc::Add(_)));
        assert_eq!(fb.len(), 2);
        assert_eq!(f.n_locals, 1);
    }

    #[test]
    fn smi_vs_double_literals() {
        let (f, _, _) = compile_src("var a = 5; var b = 2.5; var c = 3e9;");
        assert!(f.code.contains(&Bc::LdaSmi(5)));
        assert!(f.code.contains(&Bc::LdaNum(2.5)));
        assert!(f.code.contains(&Bc::LdaNum(3e9)), "out-of-smi-range integral is a double");
    }

    #[test]
    fn while_loop_has_loophead_and_backedge() {
        let (f, _, _) = compile_src("var i = 0; while (i < 10) { i = i + 1; }");
        let head = f.code.iter().position(|b| *b == Bc::LoopHead).unwrap();
        assert!(f
            .code
            .iter()
            .any(|b| matches!(b, Bc::Jump(t) if *t == head as u32)));
    }

    #[test]
    fn for_loop_continue_jumps_to_update() {
        let (f, _, _) = compile_src(
            "for (var i = 0; i < 10; i++) { if (i == 5) continue; i = i + 1; }",
        );
        assert!(f.code.iter().filter(|b| matches!(b, Bc::LoopHead)).count() == 1);
    }

    #[test]
    fn member_assignment_shapes() {
        let (f, _, env) = compile_src("var o = {}; o.x = 1; o.x += 2;");
        let sets = f.code.iter().filter(|b| matches!(b, Bc::SetProp(..))).count();
        let gets = f.code.iter().filter(|b| matches!(b, Bc::GetProp(..))).count();
        assert_eq!(sets, 2);
        assert_eq!(gets, 1, "compound assignment loads once");
        assert!(env.names.lookup("x").is_some());
    }

    #[test]
    fn method_call_compiles_to_callmethod() {
        let (f, _, _) = compile_src("var a = []; a.push(1);");
        assert!(f.code.iter().any(|b| matches!(b, Bc::CallMethod(_, 1, _))));
    }

    #[test]
    fn new_and_calls() {
        let (f, _, _) = compile_src("function F(a) { this.a = a; } var o = new F(3); F(1);");
        assert!(f.code.iter().any(|b| matches!(b, Bc::New(1, _))));
        assert!(f.code.iter().any(|b| matches!(b, Bc::Call(1, _))));
        // Hoisted function materialization.
        assert!(f.code.iter().any(|b| matches!(b, Bc::LdaFunc(0))));
    }

    #[test]
    fn postfix_update_uses_temps() {
        let (f, _, _) = compile_src("var a = [1]; var o = {}; o.n = 0; var x = a[0]++; var y = o.n++;");
        // Temps bumped n_locals beyond the 4 declared locals.
        assert!(f.n_locals > 4);
        assert!(f.code.iter().any(|b| matches!(b, Bc::SetElem(_))));
    }

    #[test]
    fn logical_ops_short_circuit_shape() {
        let (f, _, _) = compile_src("var x = 1 && 2; var y = 0 || 3;");
        assert!(f.code.iter().any(|b| matches!(b, Bc::JumpIfFalse(_))));
        assert!(f.code.iter().any(|b| matches!(b, Bc::JumpIfTrue(_))));
        assert!(f.code.iter().any(|b| matches!(b, Bc::Dup)));
    }

    #[test]
    fn object_literal_sets_props_in_order() {
        let (f, _, _) = compile_src("var p = { x: 1, y: 2 };");
        let set_count = f.code.iter().filter(|b| matches!(b, Bc::SetProp(..))).count();
        assert_eq!(set_count, 2);
        assert!(f.code.contains(&Bc::NewObject));
    }

    #[test]
    fn array_literal() {
        let (f, _, _) = compile_src("var a = [1, 2, 3];");
        assert!(f.code.contains(&Bc::NewArray(3)));
    }

    #[test]
    fn globals_resolve_to_indices() {
        let (f, _, env) = compile_src("g = 1; h = g + 1;");
        assert_eq!(env.globals, vec!["g", "h"]);
        assert!(f.code.contains(&Bc::StGlobal(0)));
        assert!(f.code.contains(&Bc::LdGlobal(0)));
        assert!(f.code.contains(&Bc::StGlobal(1)));
    }

    #[test]
    fn nested_function_expression_registers() {
        let (_, _, env) = compile_src("var f = function(a) { return a; };");
        assert_eq!(env.funcs.len(), 1);
        assert_eq!(env.funcs[0].params, vec!["a"]);
    }

    #[test]
    fn do_while_shape() {
        let (f, _, _) = compile_src("var i = 0; do { i++; } while (i < 3);");
        assert!(f.code.iter().any(|b| matches!(b, Bc::JumpIfTrue(_))));
    }

    #[test]
    fn every_function_ends_with_return_undef() {
        let (f, _, _) = compile_src("var x = 1;");
        assert_eq!(*f.code.last().unwrap(), Bc::ReturnUndef);
    }
}

//! The baseline execution tier (Full Codegen analog) and the VM core.
//!
//! * [`bytecode`] — the stack bytecode with feedback-slot-carrying sites.
//! * [`compile`] — AST → bytecode.
//! * [`feedback`] — inline-cache and type feedback (§3.2).
//! * [`vm`] — the [`vm::Vm`]: function table, globals, tiering into the
//!   optimizing tier (via [`vm::OptimizerHook`]), GC safepoints,
//!   deoptimization, misspeculation servicing, and the Class List /
//!   Class Cache store protocol shared by both tiers (§4.2).
//! * [`interp`] — the interpreter, which models the µop stream of the
//!   generated baseline code (emitted into a
//!   [`checkelide_isa::TraceSink`]).
//! * [`emit`] — the µop sequence builder.
//!
//! # Example
//!
//! ```
//! use checkelide_engine::{Vm, EngineConfig};
//! use checkelide_isa::NullSink;
//!
//! let mut vm = Vm::new(EngineConfig::default());
//! let mut sink = NullSink::new();
//! let v = vm
//!     .run_program("function f(n) { return n * 2 + 1; } var r = f(20);
//!                   r;", &mut sink)
//!     .unwrap();
//! // The top level returns undefined; read the global instead.
//! let r = vm.global_value("r").unwrap();
//! assert_eq!(r.as_smi(), 41);
//! # let _ = v;
//! ```

pub mod bytecode;
pub mod compile;
pub mod emit;
pub mod feedback;
pub mod interp;
pub mod vm;

pub use bytecode::{Bc, BytecodeFunc};
pub use compile::{compile_function, CompileEnv};
pub use emit::Emitter;
pub use feedback::{BinFeedback, CallFeedback, FeedbackSlot, SiteFeedback};
pub use vm::{
    CompileOutcome, DeoptReason, DeoptState, EngineConfig, ExecResult, ExecScratch, Frame,
    FunctionInfo, Mechanism, OptimizedCode, OptimizerHook, Vm, VmError, VmStats, STEP_BUDGET_MSG,
};

/// Revision of the µop emission schema. **Bump this whenever a change
/// anywhere in the engine, optimizer or runtime alters the µop stream a
/// given source program produces** (new µop sequences, reordered emission,
/// different addresses/tokens, category reclassification, …). It is folded
/// into [`trace_salt`], which keys the on-disk trace cache: bumping it
/// invalidates every recorded trace at once, so stale traces can never be
/// replayed against a harness that would no longer produce them.
pub const TRACE_SCHEMA_REV: u32 = 2;

/// Cache-invalidation salt identifying the µop-producing side of the
/// system: the crate version plus the manually-bumped
/// [`TRACE_SCHEMA_REV`]. Consumers (the bench trace cache) additionally
/// mix in the codec's own format version.
pub fn trace_salt() -> String {
    format!("{}+rev{}", env!("CARGO_PKG_VERSION"), TRACE_SCHEMA_REV)
}

impl Vm {
    /// Read a global by name (test/harness convenience).
    pub fn global_value(&self, name: &str) -> Option<checkelide_runtime::Value> {
        let ix = self.global_name_list.iter().position(|n| n == name)?;
        Some(self.globals[ix])
    }
}

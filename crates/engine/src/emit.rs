//! Baseline-tier µop emission.
//!
//! The interpreter *is* the model of the Full Codegen-generated machine
//! code: for every bytecode operation it emits the µop sequence the
//! generated code (plus its inline-cache stubs) would retire. Sequences
//! are chained through a rolling accumulator token so the timing model
//! sees the operand-stack dataflow, and memory µops carry real simulated
//! addresses so the cache hierarchy behaves realistically.
//!
//! All baseline µops are [`Category::RestOfCode`]: the paper's
//! Checks/Tags/Untags/Math categories measure *optimized* code (those
//! checks live in `checkelide-opt`).

use checkelide_isa::layout::RUNTIME_CODE_BASE;
use checkelide_isa::uop::{Category, MemRef, Region, Tok, Uop, UopKind};
use checkelide_isa::BatchSink;
use std::cell::Cell;

thread_local! {
    // One token namespace per worker thread: emitters are created per
    // activation (frames, optimized bodies, builtin calls), and dataflow
    // tokens must never collide across live emitters — a collision
    // fabricates a dependency in the timing model. A VM (and its sink)
    // never crosses threads, so per-thread uniqueness is per-run
    // uniqueness; keeping the counter thread-local turns the hottest
    // allocation in the whole simulator (one token per µop) from a
    // `lock xadd` into two plain moves, and makes the token *distances*
    // a worker observes independent of sibling workers — which is what
    // the timing model's 16-bit dependency slots actually key on.
    static NEXT_TOK: Cell<u32> = const { Cell::new(1) };
}

/// Rewind the thread's token namespace to its initial state.
///
/// Called once per VM construction: every trace consumer keys on token
/// *distances*, not absolute values, so restarting from 1 at a point
/// where no emitter is live changes nothing observable — but it makes
/// the encoded µop trace a pure function of (program, configuration)
/// instead of also depending on how many runs this thread completed
/// earlier. Content-addressed trace storage relies on exactly that:
/// identical sweep cells must hash to identical bytes to dedup. Safe
/// because a VM never shares its thread with another live VM (every
/// call site builds one, runs it to completion, and drops it).
pub fn reset_token_namespace() {
    NEXT_TOK.with(|c| c.set(1));
}

/// Fixed stub entry points in the runtime-code region (one cache line of
/// simulated code per stub keeps the IL1 behaviour sane).
pub mod stubs {
    use checkelide_isa::layout::RUNTIME_CODE_BASE;

    /// Inline-cache miss handler.
    pub const IC_MISS: u64 = RUNTIME_CODE_BASE;
    /// Generic binary-op stub (doubles / strings).
    pub const BINOP_SLOW: u64 = RUNTIME_CODE_BASE + 0x100;
    /// Allocation stub.
    pub const ALLOC: u64 = RUNTIME_CODE_BASE + 0x200;
    /// Property-transition (map change) runtime path.
    pub const TRANSITION: u64 = RUNTIME_CODE_BASE + 0x300;
    /// Elements grow/transition runtime path.
    pub const ELEMS_SLOW: u64 = RUNTIME_CODE_BASE + 0x400;
    /// Builtin dispatch.
    pub const BUILTIN: u64 = RUNTIME_CODE_BASE + 0x500;
    /// Garbage collector.
    pub const GC: u64 = RUNTIME_CODE_BASE + 0x600;
    /// Deoptimizer / misspeculation exception routine.
    pub const DEOPT: u64 = RUNTIME_CODE_BASE + 0x700;
    /// String runtime helpers (concat etc.).
    pub const STRINGS: u64 = RUNTIME_CODE_BASE + 0x800;
}

/// µop emitter for one execution tier.
///
/// Tracks the program counter within the current bytecode op's code blob
/// and the accumulator dataflow token.
#[derive(Debug)]
pub struct Emitter {
    /// Base address of the current op's generated code.
    pub pc: u64,
    k: u64,
    acc: Tok,
    region: Region,
}

impl Emitter {
    /// New emitter for a tier.
    pub fn new(region: Region) -> Emitter {
        Emitter { pc: RUNTIME_CODE_BASE, k: 0, acc: Tok::NONE, region }
    }

    /// Start a new bytecode op's code blob at `pc`.
    #[inline]
    pub fn at(&mut self, pc: u64) {
        self.pc = pc;
        self.k = 0;
    }

    /// The region this emitter tags µops with.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Fresh dataflow token (unique within this thread until `u32`
    /// wrap-around; the timing model's generation check treats a wrapped
    /// collision as "no dependency").
    #[inline]
    pub fn fresh(&mut self) -> Tok {
        NEXT_TOK.with(|c| {
            let mut t = c.get();
            c.set(t.wrapping_add(1));
            if t == 0 {
                t = c.get();
                c.set(t.wrapping_add(1));
            }
            Tok(t)
        })
    }

    /// Current accumulator token (top-of-stack dataflow).
    #[inline]
    pub fn acc(&self) -> Tok {
        self.acc
    }

    /// Overwrite the accumulator token.
    #[inline]
    pub fn set_acc(&mut self, t: Tok) {
        self.acc = t;
    }

    #[inline]
    fn next_pc(&mut self) -> u64 {
        let pc = self.pc + self.k * 4;
        self.k += 1;
        pc
    }

    /// Emit one µop chained off the accumulator: srcs = [acc], dst = fresh,
    /// accumulator updated.
    #[inline]
    pub fn chain(&mut self, sink: &mut BatchSink<'_>, kind: UopKind, cat: Category) -> Tok {
        if sink.discarding() {
            return Tok::NONE;
        }
        let dst = self.fresh();
        let u = Uop {
            kind,
            category: cat,
            pc: self.next_pc(),
            mem: None,
            srcs: [self.acc, Tok::NONE],
            dst,
            provenance: Default::default(),
            region: self.region,
            taken: false,
        };
        sink.push(u);
        self.acc = dst;
        dst
    }

    /// Emit a dependency-free µop that *starts* a chain (e.g. a constant
    /// materialization or a frame-slot load whose address is a frame
    /// pointer plus an immediate): no source operands, fresh destination,
    /// accumulator reset to it.
    #[inline]
    pub fn root(&mut self, sink: &mut BatchSink<'_>, kind: UopKind, cat: Category) -> Tok {
        if sink.discarding() {
            return Tok::NONE;
        }
        let dst = self.fresh();
        let u = Uop {
            kind,
            category: cat,
            pc: self.next_pc(),
            mem: None,
            srcs: [Tok::NONE, Tok::NONE],
            dst,
            provenance: Default::default(),
            region: self.region,
            taken: false,
        };
        sink.push(u);
        self.acc = dst;
        dst
    }

    /// Emit a dependency-free load (frame slot / global cell).
    #[inline]
    pub fn root_load(&mut self, sink: &mut BatchSink<'_>, addr: u64, cat: Category) -> Tok {
        if sink.discarding() {
            return Tok::NONE;
        }
        let dst = self.fresh();
        let u = Uop {
            kind: UopKind::Load,
            category: cat,
            pc: self.next_pc(),
            mem: Some(MemRef::load(addr)),
            srcs: [Tok::NONE, Tok::NONE],
            dst,
            provenance: Default::default(),
            region: self.region,
            taken: false,
        };
        sink.push(u);
        self.acc = dst;
        dst
    }

    /// Emit a chained memory load from `addr`.
    #[inline]
    pub fn chain_load(&mut self, sink: &mut BatchSink<'_>, addr: u64, cat: Category) -> Tok {
        if sink.discarding() {
            return Tok::NONE;
        }
        let dst = self.fresh();
        let u = Uop {
            kind: UopKind::Load,
            category: cat,
            pc: self.next_pc(),
            mem: Some(MemRef::load(addr)),
            srcs: [self.acc, Tok::NONE],
            dst,
            provenance: Default::default(),
            region: self.region,
            taken: false,
        };
        sink.push(u);
        self.acc = dst;
        dst
    }

    /// Emit a chained store to `addr` (accumulator is the stored data).
    #[inline]
    pub fn chain_store(&mut self, sink: &mut BatchSink<'_>, addr: u64, cat: Category) {
        if sink.discarding() {
            return;
        }
        let u = Uop {
            kind: UopKind::Store,
            category: cat,
            pc: self.next_pc(),
            mem: Some(MemRef::store(addr)),
            srcs: [self.acc, Tok::NONE],
            dst: Tok::NONE,
            provenance: Default::default(),
            region: self.region,
            taken: false,
        };
        sink.push(u);
    }

    /// Emit a chained conditional branch.
    #[inline]
    pub fn chain_branch(&mut self, sink: &mut BatchSink<'_>, taken: bool, cat: Category) {
        if sink.discarding() {
            return;
        }
        let u = Uop {
            kind: UopKind::Branch,
            category: cat,
            pc: self.next_pc(),
            mem: None,
            srcs: [self.acc, Tok::NONE],
            dst: Tok::NONE,
            provenance: Default::default(),
            region: self.region,
            taken,
        };
        sink.push(u);
    }

    /// Emit a jump/call/return µop.
    #[inline]
    pub fn jump(&mut self, sink: &mut BatchSink<'_>, cat: Category) {
        if sink.discarding() {
            return;
        }
        let u = Uop {
            kind: UopKind::Jump,
            category: cat,
            pc: self.next_pc(),
            mem: None,
            srcs: [Tok::NONE, Tok::NONE],
            dst: Tok::NONE,
            provenance: Default::default(),
            region: self.region,
            taken: true,
        };
        sink.push(u);
    }

    /// Emit a raw µop (full control).
    #[inline]
    pub fn raw(&mut self, sink: &mut BatchSink<'_>, mut uop: Uop) {
        if sink.discarding() {
            return;
        }
        uop.pc = self.next_pc();
        uop.region = self.region;
        sink.push(uop);
    }

    /// Emit `n` generic ALU µops at a stub address (modelling a runtime
    /// helper of that rough length, with a call and return around it).
    ///
    /// Stub bodies fan out from the entry operand rather than forming one
    /// serial chain: real helper routines have internal ILP, so their cost
    /// is fetch/issue bandwidth (and their memory traffic), not a latency
    /// chain proportional to their length.
    pub fn stub_call(&mut self, sink: &mut BatchSink<'_>, stub: u64, n_alu: u64, n_mem: u64) {
        if sink.discarding() {
            return;
        }
        let saved_pc = self.pc;
        let saved_k = self.k;
        self.jump(sink, Category::RestOfCode);
        self.at(stub);
        let entry = self.acc;
        let mut last = entry;
        for i in 0..n_alu {
            let dst = self.fresh();
            let kind = if i % 5 == 4 { UopKind::Branch } else { UopKind::Alu };
            let mut u = Uop {
                kind,
                category: Category::RestOfCode,
                pc: self.next_pc(),
                mem: None,
                srcs: [entry, Tok::NONE],
                dst,
                provenance: Default::default(),
                region: self.region,
                taken: i % 2 == 0,
            };
            if kind == UopKind::Branch {
                u.dst = Tok::NONE;
            } else {
                last = dst;
            }
            sink.push(u);
        }
        for i in 0..n_mem {
            let dst = self.fresh();
            let u = Uop {
                kind: UopKind::Load,
                category: Category::RestOfCode,
                pc: self.next_pc(),
                mem: Some(MemRef::load(stub + 0x40 + i * 8)),
                srcs: [entry, Tok::NONE],
                dst,
                provenance: Default::default(),
                region: self.region,
                taken: false,
            };
            sink.push(u);
            last = dst;
        }
        self.jump(sink, Category::RestOfCode);
        self.acc = last;
        self.pc = saved_pc;
        self.k = saved_k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkelide_isa::trace::VecSink;

    #[test]
    fn chain_threads_tokens() {
        let mut e = Emitter::new(Region::Baseline);
        let mut s = VecSink::new();
        let mut b = BatchSink::new(&mut s);
        e.at(0x1000);
        let t1 = e.chain(&mut b, UopKind::Alu, Category::RestOfCode);
        let t2 = e.chain(&mut b, UopKind::Alu, Category::RestOfCode);
        drop(b);
        assert_ne!(t1, t2);
        assert_eq!(s.uops[1].srcs[0], t1, "second op consumes first's result");
        assert_eq!(s.uops[0].pc, 0x1000);
        assert_eq!(s.uops[1].pc, 0x1004);
    }

    #[test]
    fn memory_uops_carry_addresses() {
        let mut e = Emitter::new(Region::Optimized);
        let mut s = VecSink::new();
        let mut b = BatchSink::new(&mut s);
        e.at(0x2000);
        e.chain_load(&mut b, 0xabc0, Category::Check);
        e.chain_store(&mut b, 0xdef0, Category::OtherOptimized);
        drop(b);
        assert_eq!(s.uops[0].mem.unwrap().addr, 0xabc0);
        assert!(!s.uops[0].mem.unwrap().is_store);
        assert_eq!(s.uops[1].mem.unwrap().addr, 0xdef0);
        assert!(s.uops[1].mem.unwrap().is_store);
        assert!(s.uops.iter().all(|u| u.region == Region::Optimized));
    }

    #[test]
    fn stub_call_restores_pc() {
        let mut e = Emitter::new(Region::Baseline);
        let mut s = VecSink::new();
        let mut b = BatchSink::new(&mut s);
        e.at(0x3000);
        e.chain(&mut b, UopKind::Alu, Category::RestOfCode);
        e.stub_call(&mut b, stubs::IC_MISS, 10, 2);
        e.chain(&mut b, UopKind::Alu, Category::RestOfCode);
        drop(b);
        let last = s.uops.last().unwrap();
        assert!(last.pc >= 0x3000 && last.pc < 0x3100, "pc back in op blob: {:#x}", last.pc);
        // Stub µops landed in the runtime-code region.
        assert!(s.uops.iter().any(|u| u.pc >= stubs::IC_MISS && u.pc < stubs::IC_MISS + 0x100));
        assert_eq!(s.uops.len(), 1 + 1 + 10 + 2 + 1 + 1);
    }

    #[test]
    fn fresh_tokens_never_zero() {
        let mut e = Emitter::new(Region::Runtime);
        for _ in 0..10 {
            assert!(e.fresh().is_some());
        }
    }
}

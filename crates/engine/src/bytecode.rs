//! The register-poor, stack-based bytecode executed by the baseline tier
//! (the Full Codegen analog).
//!
//! Every type-sensitive site carries a *feedback slot* index; the baseline
//! interpreter records inline-cache state there and the optimizing tier
//! reads it to specialize (§3.2).

use checkelide_runtime::NameId;

/// Index of a feedback slot within a function.
pub type FbIx = u32;

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bc {
    /// Push a SMI constant.
    LdaSmi(i32),
    /// Push a (possibly non-SMI) numeric constant.
    LdaNum(f64),
    /// Push an interned string constant (index into the function's string
    /// constant table).
    LdaStr(u32),
    /// Push `true`.
    LdaTrue,
    /// Push `false`.
    LdaFalse,
    /// Push `null`.
    LdaNull,
    /// Push `undefined`.
    LdaUndef,
    /// Push `this`.
    LdaThis,
    /// Push a function object for function-table entry `ix`.
    LdaFunc(u32),
    /// Push local `ix`.
    LdLocal(u16),
    /// Pop into local `ix`.
    StLocal(u16),
    /// Push global `ix`.
    LdGlobal(u32),
    /// Pop into global `ix`.
    StGlobal(u32),
    /// Pop object, push `obj.name`.
    GetProp(NameId, FbIx),
    /// Pop value then object, store `obj.name = value`, push value.
    SetProp(NameId, FbIx),
    /// Pop index then object, push `obj[index]`.
    GetElem(FbIx),
    /// Pop value, index, object; store; push value.
    SetElem(FbIx),
    /// Binary arithmetic: pop rhs, lhs; push result.
    Add(FbIx),
    /// Subtraction.
    Sub(FbIx),
    /// Multiplication.
    Mul(FbIx),
    /// Division.
    Div(FbIx),
    /// Remainder.
    Mod(FbIx),
    /// Bitwise and.
    BitAnd(FbIx),
    /// Bitwise or.
    BitOr(FbIx),
    /// Bitwise xor.
    BitXor(FbIx),
    /// Shift left.
    Shl(FbIx),
    /// Arithmetic shift right.
    Sar(FbIx),
    /// Logical shift right.
    Shr(FbIx),
    /// Arithmetic negation.
    Neg(FbIx),
    /// Bitwise not.
    BitNot(FbIx),
    /// Logical not (pop, push boolean).
    Not,
    /// Comparison `<`.
    TestLt(FbIx),
    /// Comparison `<=`.
    TestLe(FbIx),
    /// Comparison `>`.
    TestGt(FbIx),
    /// Comparison `>=`.
    TestGe(FbIx),
    /// Loose equality.
    TestEq(FbIx),
    /// Loose inequality.
    TestNe(FbIx),
    /// Strict equality.
    TestStrictEq(FbIx),
    /// Strict inequality.
    TestStrictNe(FbIx),
    /// Unconditional jump to bytecode index.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalse(u32),
    /// Pop; jump when truthy.
    JumpIfTrue(u32),
    /// Duplicate the top of stack.
    Dup,
    /// Pop and discard.
    Pop,
    /// Call: stack is `[callee, arg0..argN-1]`; pops all, pushes result.
    Call(u8, FbIx),
    /// Method call: stack is `[receiver, arg0..argN-1]`; property `name`
    /// of the receiver is the callee, receiver becomes `this`.
    CallMethod(NameId, u8, FbIx),
    /// Constructor call: stack is `[callee, args...]`.
    New(u8, FbIx),
    /// Return the top of stack.
    Return,
    /// Return `undefined`.
    ReturnUndef,
    /// Create an empty object literal.
    NewObject,
    /// Create an array from the top `n` stack values.
    NewArray(u16),
    /// Loop header: back-edge / on-stack-replacement counter site.
    LoopHead,
}

/// A compiled function body.
#[derive(Debug, Clone)]
pub struct BytecodeFunc {
    /// Function name (for diagnostics).
    pub name: String,
    /// Number of parameters.
    pub params: u16,
    /// Total locals (parameters first).
    pub n_locals: u16,
    /// The code.
    pub code: Vec<Bc>,
    /// String constant table.
    pub strings: Vec<String>,
    /// Number of feedback slots.
    pub n_feedback: u32,
    /// Maximum operand-stack depth (computed by the compiler).
    pub max_stack: u16,
}

impl BytecodeFunc {
    /// Render a human-readable disassembly.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "function {} ({} params, {} locals)", self.name, self.params, self.n_locals);
        for (i, bc) in self.code.iter().enumerate() {
            let _ = writeln!(out, "  {i:4}: {bc:?}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disassembly_contains_ops() {
        let f = BytecodeFunc {
            name: "f".into(),
            params: 1,
            n_locals: 2,
            code: vec![Bc::LdLocal(0), Bc::LdaSmi(1), Bc::Add(0), Bc::Return],
            strings: vec![],
            n_feedback: 1,
            max_stack: 2,
        };
        let d = f.disassemble();
        assert!(d.contains("LdLocal(0)"));
        assert!(d.contains("Add(0)"));
        assert!(d.contains("function f"));
    }
}

//! The baseline bytecode interpreter (the Full Codegen analog).
//!
//! Executes bytecode against the runtime while (a) recording type
//! feedback in the function's inline caches, (b) emitting the µop trace
//! the equivalent generated code would retire, and (c) in profiling
//! modes, driving the Class List / Class Cache store protocol.

use crate::bytecode::Bc;
use crate::emit::{stubs, Emitter};
use crate::vm::{Frame, Vm, VmError};
use checkelide_isa::uop::{Category, Region, Tok, UopKind};
use checkelide_isa::BatchSink;
use checkelide_runtime::numops::{self, BitwiseOp, CmpOp};
use checkelide_runtime::{maps::fixed, Builtin, ElemKind, NumPath, Value};

const CAT: Category = Category::RestOfCode;

impl Vm {
    /// Run a frame from `start_pc` until return.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn interpret(
        &mut self,
        sink: &mut BatchSink<'_>,
        func: u32,
        bc: &std::rc::Rc<crate::bytecode::BytecodeFunc>,
        frame: Frame,
        start_pc: u32,
    ) -> Result<Value, VmError> {
        let mut frame = frame;
        frame.toks.resize(frame.stack.len(), Tok::NONE);
        frame.local_toks.resize(frame.locals.len(), Tok::NONE);
        self.frames.push(frame);
        let r = self.interp_loop(sink, func, bc, start_pc);
        if let Some(f) = self.frames.pop() {
            self.recycle_frame(f);
        }
        r
    }

    #[allow(clippy::too_many_lines)]
    fn interp_loop(
        &mut self,
        sink: &mut BatchSink<'_>,
        func: u32,
        bc: &crate::bytecode::BytecodeFunc,
        start_pc: u32,
    ) -> Result<Value, VmError> {
        let fx = self.frames.len() - 1;
        let code_base = Vm::code_base(func);
        let mut em = Emitter::new(Region::Baseline);
        let mut pc = start_pc as usize;

        macro_rules! push {
            ($v:expr, $t:expr) => {{
                let v = $v;
                let t = $t;
                self.frames[fx].stack.push(v);
                self.frames[fx].toks.push(t);
            }};
        }
        macro_rules! pop {
            () => {{
                let v = self.frames[fx].stack.pop().expect("stack underflow");
                let t = self.frames[fx].toks.pop().expect("tok underflow");
                (v, t)
            }};
        }

        loop {
            if self.steps_remaining == 0 {
                return Err(VmError::new(crate::vm::STEP_BUDGET_MSG));
            }
            self.steps_remaining -= 1;
            let op = bc.code[pc];
            em.at(code_base + pc as u64 * 64);
            match op {
                Bc::LdaSmi(n) => {
                    let t = em.root(sink, UopKind::Move, CAT);
                    push!(Value::smi(n), t);
                }
                Bc::LdaNum(f) => {
                    let v = self.rt.double_constant(f);
                    let t = em.root(sink, UopKind::Move, CAT);
                    push!(v, t);
                }
                Bc::LdaStr(ix) => {
                    let v = self.rt.string_value(&bc.strings[ix as usize]);
                    let t = em.root(sink, UopKind::Move, CAT);
                    push!(v, t);
                }
                Bc::LdaTrue => {
                    let t = em.root(sink, UopKind::Move, CAT);
                    push!(self.rt.odd.true_v, t);
                }
                Bc::LdaFalse => {
                    let t = em.root(sink, UopKind::Move, CAT);
                    push!(self.rt.odd.false_v, t);
                }
                Bc::LdaNull => {
                    let t = em.root(sink, UopKind::Move, CAT);
                    push!(self.rt.odd.null, t);
                }
                Bc::LdaUndef => {
                    let t = em.root(sink, UopKind::Move, CAT);
                    push!(self.rt.odd.undefined, t);
                }
                Bc::LdaThis => {
                    let t = em.root(sink, UopKind::Move, CAT);
                    push!(self.frames[fx].this, t);
                }
                Bc::LdaFunc(ix) => {
                    let v = self.function_value(ix);
                    let t = em.root(sink, UopKind::Move, CAT);
                    push!(v, t);
                }
                Bc::LdLocal(i) => {
                    let v = self.frames[fx].locals[i as usize];
                    let t = em.root_load(sink, self.local_addr(i), CAT);
                    push!(v, t);
                }
                Bc::StLocal(i) => {
                    let (v, t) = pop!();
                    em.set_acc(t);
                    em.chain_store(sink, self.local_addr(i), CAT);
                    self.frames[fx].locals[i as usize] = v;
                }
                Bc::LdGlobal(g) => {
                    let v = self.globals[g as usize];
                    let t = em.root_load(sink, Vm::global_addr(g), CAT);
                    push!(v, t);
                }
                Bc::StGlobal(g) => {
                    let (v, t) = pop!();
                    em.set_acc(t);
                    em.chain_store(sink, Vm::global_addr(g), CAT);
                    self.globals[g as usize] = v;
                }
                Bc::GetProp(name, fb) => {
                    let (obj, t) = pop!();
                    em.set_acc(t);
                    let (v, vt) = self.ip_get_prop(sink, &mut em, func, obj, name, fb, pc)?;
                    push!(v, vt);
                }
                Bc::SetProp(name, fb) => {
                    let (value, vt) = pop!();
                    let (obj, _ot) = pop!();
                    let value =
                        self.ip_set_prop(sink, &mut em, func, obj, name, value, vt, fb)?;
                    push!(value, vt);
                }
                Bc::GetElem(fb) => {
                    let (ix, _it) = pop!();
                    let (obj, ot) = pop!();
                    em.set_acc(ot);
                    let (v, vt) = self.ip_get_elem(sink, &mut em, func, obj, ix, fb)?;
                    push!(v, vt);
                }
                Bc::SetElem(fb) => {
                    let (value, vt) = pop!();
                    let (ix, _it) = pop!();
                    let (obj, _ot) = pop!();
                    self.ip_set_elem(sink, &mut em, func, obj, ix, value, vt, fb)?;
                    push!(value, vt);
                }
                Bc::Add(fb) | Bc::Sub(fb) | Bc::Mul(fb) | Bc::Div(fb) | Bc::Mod(fb) => {
                    let (b, _bt) = pop!();
                    let (a, at) = pop!();
                    em.set_acc(at);
                    let (v, path) = match op {
                        Bc::Add(_) => numops::add(&mut self.rt, a, b),
                        Bc::Sub(_) => numops::sub(&mut self.rt, a, b),
                        Bc::Mul(_) => numops::mul(&mut self.rt, a, b),
                        Bc::Div(_) => numops::div(&mut self.rt, a, b),
                        _ => numops::rem(&mut self.rt, a, b),
                    };
                    self.funcs[func as usize].feedback[fb as usize].bin_mut().record(path);
                    let t = self.ip_emit_arith(sink, &mut em, path, matches!(op, Bc::Div(_) | Bc::Mod(_)));
                    push!(v, t);
                }
                Bc::BitAnd(fb) | Bc::BitOr(fb) | Bc::BitXor(fb) | Bc::Shl(fb) | Bc::Sar(fb)
                | Bc::Shr(fb) => {
                    let (b, _bt) = pop!();
                    let (a, at) = pop!();
                    em.set_acc(at);
                    let bop = match op {
                        Bc::BitAnd(_) => BitwiseOp::And,
                        Bc::BitOr(_) => BitwiseOp::Or,
                        Bc::BitXor(_) => BitwiseOp::Xor,
                        Bc::Shl(_) => BitwiseOp::Shl,
                        Bc::Sar(_) => BitwiseOp::Sar,
                        _ => BitwiseOp::Shr,
                    };
                    let (v, path) = numops::bitwise(&mut self.rt, bop, a, b);
                    self.funcs[func as usize].feedback[fb as usize].bin_mut().record(path);
                    // Fast path: untag, op, tag. Slow: coercion stub.
                    let t = if path == NumPath::SmiSmi {
                        em.chain(sink, UopKind::Alu, CAT);
                        em.chain(sink, UopKind::Alu, CAT)
                    } else {
                        em.stub_call(sink, stubs::BINOP_SLOW, 8, 2);
                        em.chain(sink, UopKind::Alu, CAT)
                    };
                    push!(v, t);
                }
                Bc::Neg(fb) => {
                    let (a, at) = pop!();
                    em.set_acc(at);
                    let (v, path) = numops::neg(&mut self.rt, a);
                    self.funcs[func as usize].feedback[fb as usize].bin_mut().record(path);
                    let t = self.ip_emit_arith(sink, &mut em, path, false);
                    push!(v, t);
                }
                Bc::BitNot(fb) => {
                    let (a, at) = pop!();
                    em.set_acc(at);
                    let (v, path) = numops::bit_not(&mut self.rt, a);
                    self.funcs[func as usize].feedback[fb as usize].bin_mut().record(path);
                    let t = em.chain(sink, UopKind::Alu, CAT);
                    push!(v, t);
                }
                Bc::Not => {
                    let (a, at) = pop!();
                    em.set_acc(at);
                    let truthy = self.rt.is_truthy(a);
                    em.chain(sink, UopKind::Alu, CAT);
                    let t = em.chain(sink, UopKind::Alu, CAT);
                    push!(self.rt.bool_value(!truthy), t);
                }
                Bc::TestLt(fb) | Bc::TestLe(fb) | Bc::TestGt(fb) | Bc::TestGe(fb) => {
                    let (b, _bt) = pop!();
                    let (a, at) = pop!();
                    em.set_acc(at);
                    let cmp = match op {
                        Bc::TestLt(_) => CmpOp::Lt,
                        Bc::TestLe(_) => CmpOp::Le,
                        Bc::TestGt(_) => CmpOp::Gt,
                        _ => CmpOp::Ge,
                    };
                    let (r, path) = numops::compare(&self.rt, cmp, a, b);
                    self.funcs[func as usize].feedback[fb as usize].bin_mut().record(path);
                    let t = match path {
                        NumPath::SmiSmi => {
                            em.chain(sink, UopKind::Alu, CAT);
                            em.chain(sink, UopKind::Alu, CAT)
                        }
                        NumPath::Double => {
                            em.chain(sink, UopKind::Alu, CAT);
                            em.chain_load(sink, ptr_or(a, b), CAT);
                            em.chain(sink, UopKind::FpAdd, CAT);
                            em.chain(sink, UopKind::Alu, CAT)
                        }
                        _ => {
                            em.stub_call(sink, stubs::BINOP_SLOW, 12, 4);
                            em.chain(sink, UopKind::Alu, CAT)
                        }
                    };
                    push!(self.rt.bool_value(r), t);
                }
                Bc::TestEq(fb) | Bc::TestNe(fb) => {
                    let (b, _bt) = pop!();
                    let (a, at) = pop!();
                    em.set_acc(at);
                    let r = numops::loose_eq(&self.rt, a, b);
                    let r = if matches!(op, Bc::TestNe(_)) { !r } else { r };
                    let path = if a.is_smi() && b.is_smi() {
                        NumPath::SmiSmi
                    } else {
                        NumPath::Generic
                    };
                    self.funcs[func as usize].feedback[fb as usize].bin_mut().record(path);
                    let t = if path == NumPath::SmiSmi {
                        em.chain(sink, UopKind::Alu, CAT);
                        em.chain(sink, UopKind::Alu, CAT)
                    } else {
                        em.stub_call(sink, stubs::BINOP_SLOW, 10, 3);
                        em.chain(sink, UopKind::Alu, CAT)
                    };
                    push!(self.rt.bool_value(r), t);
                }
                Bc::TestStrictEq(fb) | Bc::TestStrictNe(fb) => {
                    let (b, _bt) = pop!();
                    let (a, at) = pop!();
                    em.set_acc(at);
                    let r = numops::strict_eq(&self.rt, a, b);
                    let r = if matches!(op, Bc::TestStrictNe(_)) { !r } else { r };
                    let path = if a.is_smi() && b.is_smi() {
                        NumPath::SmiSmi
                    } else if self.rt.is_number(a) && self.rt.is_number(b) {
                        NumPath::Double
                    } else {
                        NumPath::Generic
                    };
                    self.funcs[func as usize].feedback[fb as usize].bin_mut().record(path);
                    em.chain(sink, UopKind::Alu, CAT);
                    let t = em.chain(sink, UopKind::Alu, CAT);
                    push!(self.rt.bool_value(r), t);
                }
                Bc::Jump(target) => {
                    em.jump(sink, CAT);
                    pc = target as usize;
                    continue;
                }
                Bc::JumpIfFalse(target) | Bc::JumpIfTrue(target) => {
                    let (a, at) = pop!();
                    em.set_acc(at);
                    let truthy = self.rt.is_truthy(a);
                    if !(a.is_smi() || matches!(self.rt.kind_of(a), checkelide_runtime::VKind::Bool(_))) {
                        em.chain(sink, UopKind::Alu, CAT); // generic ToBoolean
                        em.chain(sink, UopKind::Alu, CAT);
                    }
                    em.chain(sink, UopKind::Alu, CAT);
                    let jump_if_false = matches!(op, Bc::JumpIfFalse(_));
                    let taken = if jump_if_false { !truthy } else { truthy };
                    em.chain_branch(sink, taken, CAT);
                    if taken {
                        pc = target as usize;
                        continue;
                    }
                }
                Bc::Dup => {
                    let (v, t) = pop!();
                    push!(v, t);
                    push!(v, t);
                    em.chain(sink, UopKind::Move, CAT);
                }
                Bc::Pop => {
                    let _ = pop!();
                }
                Bc::Call(argc, fb) => {
                    let v = self.ip_call(sink, &mut em, func, fx, argc, fb, false, None)?;
                    let t = em.fresh();
                    em.set_acc(t);
                    push!(v, t);
                }
                Bc::CallMethod(name, argc, fb) => {
                    let v = self.ip_call(sink, &mut em, func, fx, argc, fb, true, Some(name))?;
                    let t = em.fresh();
                    em.set_acc(t);
                    push!(v, t);
                }
                Bc::New(argc, fb) => {
                    let v = self.ip_new(sink, &mut em, func, fx, argc, fb)?;
                    let t = em.fresh();
                    em.set_acc(t);
                    push!(v, t);
                }
                Bc::Return => {
                    let (v, _t) = pop!();
                    em.jump(sink, CAT);
                    return Ok(v);
                }
                Bc::ReturnUndef => {
                    em.jump(sink, CAT);
                    return Ok(self.rt.odd.undefined);
                }
                Bc::NewObject => {
                    em.stub_call(sink, stubs::ALLOC, 10, 3);
                    let v = self.rt.alloc_object(fixed::OBJECT_LITERAL_ROOT, 1);
                    let t = em.fresh();
                    em.set_acc(t);
                    push!(v, t);
                }
                Bc::NewArray(n) => {
                    em.stub_call(sink, stubs::ALLOC, 12, 4);
                    let mut items = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        let (v, _) = pop!();
                        items.push(v);
                    }
                    items.reverse();
                    let arr = self.rt.alloc_object(fixed::ARRAY_ROOT, 1);
                    // Keep the array rooted while element stores may box.
                    push!(arr, em.fresh());
                    for (i, &v) in items.iter().enumerate() {
                        let st = self.rt.store_element(arr, i as i64, v);
                        if let Some(nm) = st.transitioned {
                            self.note_kind_transition(sink, nm, None);
                        }
                        let map_after = self.rt.object_map(arr);
                        self.store_element_profiled(
                            sink, &mut em, arr, map_after, st.kind, st.slot_addr, v, None, None,
                        );
                    }
                    let (arr, t) = pop!();
                    push!(arr, t);
                }
                Bc::LoopHead => {
                    self.gc_safepoint(sink, &[], &[]);
                    em.chain(sink, UopKind::Alu, CAT);
                    em.chain_branch(sink, false, CAT);
                }
            }
            pc += 1;
        }
    }

    fn ip_emit_arith(
        &mut self,
        sink: &mut BatchSink<'_>,
        em: &mut Emitter,
        path: NumPath,
        is_div: bool,
    ) -> Tok {
        match path {
            NumPath::SmiSmi => {
                em.chain(sink, UopKind::Alu, CAT); // tag test
                em.chain_branch(sink, false, CAT);
                let t = em.chain(sink, if is_div { UopKind::Div } else { UopKind::Alu }, CAT);
                em.chain_branch(sink, false, CAT); // overflow check
                t
            }
            NumPath::SmiOverflow => {
                em.chain(sink, UopKind::Alu, CAT);
                em.chain_branch(sink, false, CAT);
                em.chain(sink, UopKind::Alu, CAT);
                em.chain_branch(sink, true, CAT);
                // Box the double result.
                em.stub_call(sink, stubs::ALLOC, 4, 2);
                em.chain(sink, UopKind::FpAdd, CAT)
            }
            NumPath::Double => {
                em.chain(sink, UopKind::Alu, CAT); // tag test
                em.chain_branch(sink, true, CAT);
                em.stub_call(sink, stubs::BINOP_SLOW, 3, 2); // unbox operands
                let t = em.chain(sink, if is_div { UopKind::FpDiv } else { UopKind::FpMul }, CAT);
                em.stub_call(sink, stubs::ALLOC, 4, 2); // box result
                t
            }
            NumPath::Str => {
                em.stub_call(sink, stubs::STRINGS, 35, 12);
                em.chain(sink, UopKind::Alu, CAT)
            }
            NumPath::Generic => {
                em.stub_call(sink, stubs::BINOP_SLOW, 20, 6);
                em.chain(sink, UopKind::Alu, CAT)
            }
        }
    }

    /// Baseline `obj.name` with inline caching.
    #[allow(clippy::too_many_arguments)]
    fn ip_get_prop(
        &mut self,
        sink: &mut BatchSink<'_>,
        em: &mut Emitter,
        func: u32,
        obj: Value,
        name: checkelide_runtime::NameId,
        fb: u32,
        _pc: usize,
    ) -> Result<(Value, Tok), VmError> {
        use checkelide_runtime::VKind;
        match if obj.is_smi() { VKind::Smi } else { self.rt.kind_of(obj) } {
            VKind::Object => {
                let map = self.rt.object_map(obj);
                let hit = self.funcs[func as usize].feedback[fb as usize].site_mut().record(map);
                if hit {
                    self.stats.ic_hits += 1;
                } else {
                    self.stats.ic_misses += 1;
                }
                // IC dispatch: call + map check.
                em.jump(sink, CAT);
                em.chain_load(sink, obj.addr(), CAT);
                em.chain(sink, UopKind::Alu, CAT);
                em.chain_branch(sink, false, CAT);
                if !hit {
                    em.stub_call(sink, stubs::IC_MISS, 20, 6);
                }
                if let Some(off) = self.rt.maps.get(map).offset_of(name) {
                    self.note_line_access(off);
                    if self.config.mechanism.profiles() {
                        if let Some(cid) = self.rt.maps.get(map).class_id {
                            self.load_stats.record_property_load(cid, (off / 8) as u8, (off % 8) as u8);
                        }
                    }
                    let v = self.rt.load_slot(obj, off);
                    let t = em.chain_load(sink, self.rt.slot_addr(obj, off), CAT);
                    em.jump(sink, CAT);
                    return Ok((v, t));
                }
                // `length` falls back to the elements length.
                if self.rt.names.text(name) == "length" {
                    let len = self.rt.elements_length(obj);
                    let t = em.chain_load(
                        sink,
                        obj.addr() + 8 * checkelide_runtime::maps::ELEMENTS_LEN_WORD as u64,
                        CAT,
                    );
                    em.jump(sink, CAT);
                    return Ok((Value::smi(len as i32), t));
                }
                // Missing property: undefined.
                em.stub_call(sink, stubs::IC_MISS, 10, 4);
                Ok((self.rt.odd.undefined, em.fresh()))
            }
            VKind::Str => {
                self.funcs[func as usize].feedback[fb as usize].site_mut().record_generic();
                if self.rt.names.text(name) == "length" {
                    let len = self.rt.strings.len(self.rt.str_id(obj)) as i32;
                    let t = em.chain_load(sink, obj.addr() + 8, CAT);
                    return Ok((Value::smi(len), t));
                }
                em.stub_call(sink, stubs::IC_MISS, 8, 2);
                Ok((self.rt.odd.undefined, em.fresh()))
            }
            VKind::Null | VKind::Undefined => Err(VmError::new(format!(
                "cannot read property `{}` of {}",
                self.rt.names.text(name),
                self.rt.to_display_string(obj)
            ))),
            _ => {
                self.funcs[func as usize].feedback[fb as usize].site_mut().record_generic();
                em.stub_call(sink, stubs::IC_MISS, 8, 2);
                Ok((self.rt.odd.undefined, em.fresh()))
            }
        }
    }

    /// Baseline `obj.name = value` with inline caching, transitions and
    /// store profiling. Returns the (possibly relocation-fixed) value.
    #[allow(clippy::too_many_arguments)]
    fn ip_set_prop(
        &mut self,
        sink: &mut BatchSink<'_>,
        em: &mut Emitter,
        func: u32,
        obj: Value,
        name: checkelide_runtime::NameId,
        value: Value,
        vt: Tok,
        fb: u32,
    ) -> Result<Value, VmError> {
        use checkelide_runtime::VKind;
        if obj.is_smi() {
            return Ok(value);
        }
        match self.rt.kind_of(obj) {
            VKind::Object => {}
            VKind::Null | VKind::Undefined => {
                return Err(VmError::new(format!(
                    "cannot set property `{}` of {}",
                    self.rt.names.text(name),
                    self.rt.to_display_string(obj)
                )))
            }
            _ => return Ok(value),
        }
        let map_before = self.rt.object_map(obj);
        let hit = self.funcs[func as usize].feedback[fb as usize].site_mut().record(map_before);
        if hit {
            self.stats.ic_hits += 1;
        } else {
            self.stats.ic_misses += 1;
        }
        em.jump(sink, CAT);
        em.chain_load(sink, obj.addr(), CAT);
        em.chain(sink, UopKind::Alu, CAT);
        em.chain_branch(sink, false, CAT);
        if !hit {
            em.stub_call(sink, stubs::IC_MISS, 20, 6);
        }

        if let Some(off) = self.rt.maps.get(map_before).offset_of(name) {
            self.note_line_access(off);
            self.rt.store_slot(obj, off, value);
            em.set_acc(vt);
            self.store_property_profiled(sink, em, obj, map_before, off, value, None);
            em.jump(sink, CAT);
            return Ok(value);
        }

        // Transition (property addition): an in-place class change.
        em.stub_call(sink, stubs::TRANSITION, 25, 8);
        self.note_map_transition(sink, map_before, None);
        let add = self.rt.add_property(obj, name);
        let (obj, value) = match add.relocated {
            Some((old, new)) => {
                self.fix_roots(old, new);
                let fix = |v: Value| if v.is_ptr() && v.addr() == old { Value::ptr(new) } else { v };
                (fix(obj), fix(value))
            }
            None => (obj, value),
        };
        self.note_line_access(add.offset);
        self.rt.store_slot(obj, add.offset, value);
        em.set_acc(vt);
        self.store_property_profiled(sink, em, obj, add.new_map, add.offset, value, None);
        em.jump(sink, CAT);
        Ok(value)
    }

    /// Baseline `obj[ix]`.
    fn ip_get_elem(
        &mut self,
        sink: &mut BatchSink<'_>,
        em: &mut Emitter,
        func: u32,
        obj: Value,
        ix: Value,
        fb: u32,
    ) -> Result<(Value, Tok), VmError> {
        use checkelide_runtime::VKind;
        if obj.is_smi() {
            return Err(VmError::new("cannot index a number"));
        }
        match self.rt.kind_of(obj) {
            VKind::Str => {
                self.funcs[func as usize].feedback[fb as usize].site_mut().record_generic();
                em.stub_call(sink, stubs::STRINGS, 8, 3);
                let i = integral_index(&self.rt, ix);
                let v = match i {
                    Some(i) => {
                        checkelide_runtime::call_builtin(
                            &mut self.rt,
                            Builtin::CharAt,
                            obj,
                            &[Value::smi(i as i32)],
                        )
                    }
                    None => self.rt.odd.undefined,
                };
                Ok((v, em.fresh()))
            }
            VKind::Object => {
                let map = self.rt.object_map(obj);
                let hit = self.funcs[func as usize].feedback[fb as usize].site_mut().record(map);
                if hit {
                    self.stats.ic_hits += 1;
                } else {
                    self.stats.ic_misses += 1;
                    em.stub_call(sink, stubs::IC_MISS, 15, 5);
                }
                // Map check + bounds check.
                em.jump(sink, CAT);
                em.chain_load(sink, obj.addr(), CAT);
                em.chain(sink, UopKind::Alu, CAT);
                em.chain_branch(sink, false, CAT);
                em.chain_load(sink, obj.addr() + 24, CAT); // length
                em.chain(sink, UopKind::Alu, CAT);
                em.chain_branch(sink, false, CAT);
                let Some(i) = integral_index(&self.rt, ix) else {
                    em.stub_call(sink, stubs::ELEMS_SLOW, 10, 3);
                    return Ok((self.rt.odd.undefined, em.fresh()));
                };
                let ld = self.rt.load_element(obj, i);
                if self.config.mechanism.profiles()
                    && ld.kind == ElemKind::Tagged
                    && !ld.oob
                {
                    if let Some(cid) = self.rt.maps.get(map).class_id {
                        self.load_stats.record_elements_load(cid);
                    }
                }
                let t = em.chain_load(sink, ld.slot_addr, CAT);
                if ld.boxed_double {
                    em.stub_call(sink, stubs::ALLOC, 4, 2);
                }
                em.jump(sink, CAT);
                Ok((ld.value, t))
            }
            VKind::Null | VKind::Undefined => Err(VmError::new("cannot index null/undefined")),
            _ => Ok((self.rt.odd.undefined, em.fresh())),
        }
    }

    /// Baseline `obj[ix] = value`.
    #[allow(clippy::too_many_arguments)]
    fn ip_set_elem(
        &mut self,
        sink: &mut BatchSink<'_>,
        em: &mut Emitter,
        func: u32,
        obj: Value,
        ix: Value,
        value: Value,
        vt: Tok,
        fb: u32,
    ) -> Result<(), VmError> {
        use checkelide_runtime::VKind;
        if obj.is_smi() || self.rt.kind_of(obj) != VKind::Object {
            return Err(VmError::new("cannot index-assign a non-object"));
        }
        let map_before = self.rt.object_map(obj);
        let hit = self.funcs[func as usize].feedback[fb as usize].site_mut().record(map_before);
        if hit {
            self.stats.ic_hits += 1;
        } else {
            self.stats.ic_misses += 1;
            em.stub_call(sink, stubs::IC_MISS, 15, 5);
        }
        em.jump(sink, CAT);
        em.chain_load(sink, obj.addr(), CAT);
        em.chain(sink, UopKind::Alu, CAT);
        em.chain_branch(sink, false, CAT);
        em.chain_load(sink, obj.addr() + 24, CAT);
        em.chain(sink, UopKind::Alu, CAT);
        em.chain_branch(sink, false, CAT);
        let Some(i) = integral_index(&self.rt, ix) else {
            em.stub_call(sink, stubs::ELEMS_SLOW, 10, 3);
            return Ok(());
        };
        let st = self.rt.store_element(obj, i, value);
        if let Some(nm) = st.transitioned {
            self.note_kind_transition(sink, nm, None);
        }
        if st.transitioned.is_some() || st.grew {
            em.stub_call(sink, stubs::ELEMS_SLOW, 30, 12);
        }
        let map_after = self.rt.object_map(obj);
        em.set_acc(vt);
        self.store_element_profiled(
            sink, em, obj, map_after, st.kind, st.slot_addr, value, None, None,
        );
        em.jump(sink, CAT);
        Ok(())
    }

    /// Baseline call / method-call.
    #[allow(clippy::too_many_arguments)]
    fn ip_call(
        &mut self,
        sink: &mut BatchSink<'_>,
        em: &mut Emitter,
        func: u32,
        fx: usize,
        argc: u8,
        fb: u32,
        is_method: bool,
        name: Option<checkelide_runtime::NameId>,
    ) -> Result<Value, VmError> {
        use checkelide_runtime::VKind;
        let stack_len = self.frames[fx].stack.len();
        let args: Vec<Value> =
            self.frames[fx].stack.split_off(stack_len - argc as usize);
        let new_toks = self.frames[fx].toks.len() - argc as usize;
        self.frames[fx].toks.truncate(new_toks);
        let (recv_or_callee, _t) = {
            let v = self.frames[fx].stack.pop().expect("stack underflow");
            let t = self.frames[fx].toks.pop().unwrap();
            (v, t)
        };

        // Call overhead: argument moves + call.
        for _ in 0..argc {
            em.chain(sink, UopKind::Move, CAT);
        }
        em.chain(sink, UopKind::Alu, CAT);

        if !is_method {
            em.jump(sink, CAT);
            if !recv_or_callee.is_smi()
                && matches!(self.rt.kind_of(recv_or_callee), VKind::Func)
            {
                let fr = self.rt.func_ref(recv_or_callee);
                self.funcs[func as usize].feedback[fb as usize].call_mut().record(fr);
            }
            let undef = self.rt.odd.undefined;
            return self.call_value(sink, recv_or_callee, undef, &args);
        }

        let name = name.expect("method call has a name");
        // Method lookup µops (an IC-dispatched property load).
        em.chain_load(sink, if recv_or_callee.is_ptr() { recv_or_callee.addr() } else { 0x1000 }, CAT);
        em.chain(sink, UopKind::Alu, CAT);
        em.chain_branch(sink, false, CAT);
        match if recv_or_callee.is_smi() { VKind::Smi } else { self.rt.kind_of(recv_or_callee) } {
            VKind::Str => {
                let b = match self.rt.names.text(name) {
                    "charCodeAt" => Builtin::CharCodeAt,
                    "charAt" => Builtin::CharAt,
                    "substring" => Builtin::Substring,
                    "indexOf" => Builtin::IndexOf,
                    other => {
                        return Err(VmError::new(format!("string has no method `{other}`")))
                    }
                };
                self.funcs[func as usize].feedback[fb as usize].site_mut().record_generic();
                self.funcs[func as usize].feedback[fb as usize + 1]
                    .call_mut()
                    .record(FuncRefBuiltin(b));
                Ok(self.call_builtin_traced(sink, b, recv_or_callee, &args))
            }
            VKind::Object => {
                let map = self.rt.object_map(recv_or_callee);
                let hit =
                    self.funcs[func as usize].feedback[fb as usize].site_mut().record(map);
                if hit {
                    self.stats.ic_hits += 1;
                } else {
                    self.stats.ic_misses += 1;
                    em.stub_call(sink, stubs::IC_MISS, 20, 6);
                }
                if let Some(off) = self.rt.maps.get(map).offset_of(name) {
                    self.note_line_access(off);
                    if self.config.mechanism.profiles() {
                        if let Some(cid) = self.rt.maps.get(map).class_id {
                            self.load_stats.record_property_load(
                                cid,
                                (off / 8) as u8,
                                (off % 8) as u8,
                            );
                        }
                    }
                    let callee = self.rt.load_slot(recv_or_callee, off);
                    em.chain_load(sink, self.rt.slot_addr(recv_or_callee, off), CAT);
                    em.jump(sink, CAT);
                    if !callee.is_smi() && matches!(self.rt.kind_of(callee), VKind::Func) {
                        let fr = self.rt.func_ref(callee);
                        self.funcs[func as usize].feedback[fb as usize + 1]
                            .call_mut()
                            .record(fr);
                    }
                    return self.call_value(sink, callee, recv_or_callee, &args);
                }
                // Builtin array methods.
                let b = match self.rt.names.text(name) {
                    "push" => Builtin::ArrayPush,
                    "pop" => Builtin::ArrayPop,
                    other => {
                        return Err(VmError::new(format!("object has no method `{other}`")))
                    }
                };
                self.funcs[func as usize].feedback[fb as usize + 1]
                    .call_mut()
                    .record(FuncRefBuiltin(b));
                em.jump(sink, CAT);
                // Element stores inside push are profiled like SetElem.
                let before_len = self.rt.elements_length(recv_or_callee);
                let kind_before = self.rt.elements_kind(recv_or_callee);
                let r = self.call_builtin_traced(sink, b, recv_or_callee, &args);
                if self.rt.elements_kind(recv_or_callee) != kind_before {
                    let nm = self.rt.object_map(recv_or_callee);
                    self.note_kind_transition(sink, nm, None);
                }
                if b == Builtin::ArrayPush && self.config.mechanism.profiles() {
                    let map_after = self.rt.object_map(recv_or_callee);
                    let kind = self.rt.elements_kind(recv_or_callee);
                    for (k, &a) in args.iter().enumerate() {
                        let idx = before_len as i64 + k as i64;
                        let ld = self.rt.load_element(recv_or_callee, idx);
                        self.store_element_profiled(
                            sink,
                            em,
                            recv_or_callee,
                            map_after,
                            kind,
                            ld.slot_addr,
                            a,
                            None,
                            None,
                        );
                    }
                }
                Ok(r)
            }
            _ => Err(VmError::new("method call on non-object")),
        }
    }

    /// Baseline `new F(...)`.
    fn ip_new(
        &mut self,
        sink: &mut BatchSink<'_>,
        em: &mut Emitter,
        func: u32,
        fx: usize,
        argc: u8,
        fb: u32,
    ) -> Result<Value, VmError> {
        use checkelide_runtime::VKind;
        let stack_len = self.frames[fx].stack.len();
        let args: Vec<Value> = self.frames[fx].stack.split_off(stack_len - argc as usize);
        let new_toks = self.frames[fx].toks.len() - argc as usize;
        self.frames[fx].toks.truncate(new_toks);
        let callee = self.frames[fx].stack.pop().expect("stack underflow");
        self.frames[fx].toks.pop();

        if callee.is_smi() || !matches!(self.rt.kind_of(callee), VKind::Func) {
            return Err(VmError::new("`new` target is not a function"));
        }
        let fr = self.rt.func_ref(callee);
        self.funcs[func as usize].feedback[fb as usize].call_mut().record(fr);
        let checkelide_runtime::FuncRef::User(fi) = fr else {
            return Err(VmError::new("builtins are not constructors"));
        };

        em.stub_call(sink, stubs::ALLOC, 12, 4);
        let initial_map = self.construction_map(fi);
        let capacity = self.funcs[fi as usize].expected_lines;
        let obj = self.rt.alloc_object(initial_map, capacity);

        // Keep the fresh object rooted (and relocation-fixable) on our
        // operand stack during the constructor call.
        self.frames[fx].stack.push(obj);
        self.frames[fx].toks.push(Tok::NONE);
        let ret = self.call_user(sink, fi, obj, &args);
        let obj = self.frames[fx].stack.pop().expect("constructor receiver");
        self.frames[fx].toks.pop();
        let ret = ret?;

        // Allocation-site feedback: final size and elements kind.
        self.record_construction(fi, obj);

        if !ret.is_smi() && matches!(self.rt.kind_of(ret), VKind::Object) {
            Ok(ret)
        } else {
            Ok(obj)
        }
    }
}

/// Integral, non-negative array index from a value.
fn integral_index(rt: &checkelide_runtime::Runtime, v: Value) -> Option<i64> {
    if v.is_smi() {
        let i = v.as_smi();
        return if i >= 0 { Some(i as i64) } else { None };
    }
    if matches!(rt.kind_of(v), checkelide_runtime::VKind::Number) {
        let f = rt.heap_number_value(v);
        if f.trunc() == f && (0.0..2_147_483_648.0).contains(&f) {
            return Some(f as i64);
        }
    }
    None
}

/// Address of whichever operand is a heap pointer (for the double-compare
/// unbox load); falls back to a fixed stub address.
fn ptr_or(a: Value, b: Value) -> u64 {
    if a.is_ptr() {
        a.addr()
    } else if b.is_ptr() {
        b.addr()
    } else {
        stubs::BINOP_SLOW
    }
}

#[allow(non_snake_case)]
fn FuncRefBuiltin(b: Builtin) -> checkelide_runtime::FuncRef {
    checkelide_runtime::FuncRef::Builtin(b)
}

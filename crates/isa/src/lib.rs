//! Simulated ISA for the checkelide system.
//!
//! This crate defines the *micro-operation* (µop) vocabulary shared by every
//! other crate in the workspace:
//!
//! * [`uop::Uop`] — one dynamic instruction, as it would be retired by the
//!   simulated x86-64-class core. The execution tiers
//!   (`checkelide-engine`, `checkelide-opt`) emit a stream of these while
//!   running a program; the timing model (`checkelide-uarch`) consumes them.
//! * [`uop::UopKind`] — includes the four **new machine instructions**
//!   introduced by the paper (§4.2.1.2): `movClassID`, `movClassIDArray`,
//!   `movStoreClassCache` and `movStoreClassCacheArray`.
//! * [`uop::Category`] — the dynamic-instruction categories of Figure 1
//!   (Checks, Tags/Untags, Math Assumptions, Other Optimized Code, Rest of
//!   Code).
//! * [`trace::TraceSink`] — streaming consumer interface, so that counting
//!   (Figures 1–3) and cycle-level simulation (Figures 8–9) share one trace.
//! * [`counters::CounterSink`] — the dynamic-instruction accounting used to
//!   regenerate Figures 1 and 2.
//! * [`layout`] — the simulated address-space layout (heap, code, Class
//!   List regions) shared by the runtime and the cache models.
//!
//! # Example
//!
//! ```
//! use checkelide_isa::uop::{Uop, Category, Region};
//! use checkelide_isa::trace::TraceSink;
//! use checkelide_isa::counters::CounterSink;
//!
//! let mut counters = CounterSink::new();
//! counters.emit(&Uop::alu(0x1000, Category::RestOfCode, Region::Baseline));
//! assert_eq!(counters.total(), 1);
//! ```

pub mod codec;
pub mod counters;
pub mod layout;
pub mod lz;
pub mod trace;
pub mod uop;

pub use codec::{TraceError, TraceReader, TraceWriter};
pub use counters::CounterSink;
pub use trace::{BatchSink, NullSink, TraceSink, BATCH_CAPACITY};
pub use uop::{Category, MemRef, Provenance, Region, Uop, UopKind};

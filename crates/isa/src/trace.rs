//! Streaming trace consumption.
//!
//! Producers (the execution tiers) push each retired µop into a
//! [`TraceSink`]. Consumers include [`crate::counters::CounterSink`] (for
//! the instruction-mix figures) and the timing model in `checkelide-uarch`
//! (for the cycle/energy figures). [`Tee`] fans one trace out to two sinks,
//! so a single program run can feed both.
//!
//! # Batched emission
//!
//! Replaying billions of µops one `dyn` call at a time makes virtual
//! dispatch the simulation bottleneck. [`TraceSink::emit_batch`] lets a
//! producer hand over a whole slice of retired µops in one virtual call;
//! consumers loop over the slice in monomorphized code with their per-call
//! bookkeeping hoisted out of the loop. [`BatchSink`] is the producer-side
//! adapter: execution tiers push into its concrete, inlined buffer and the
//! `dyn` boundary is crossed once per flush (once per bytecode operation in
//! the interpreters) instead of once per µop. Batching never reorders the
//! trace: there is a single buffer per run, so consumers observe the exact
//! same µop sequence as under per-µop emission.

use crate::uop::Uop;

/// A consumer of retired µops.
pub trait TraceSink {
    /// Consume one retired µop.
    fn emit(&mut self, uop: &Uop);

    /// Consume a batch of retired µops, in order. Equivalent to calling
    /// [`TraceSink::emit`] for each element; implementors override this to
    /// amortize per-call work across the batch. The default loops.
    #[inline]
    fn emit_batch(&mut self, uops: &[Uop]) {
        for u in uops {
            self.emit(u);
        }
    }

    /// Notification that the producer finished (end of measured region).
    /// Consumers may finalize statistics here. Default: no-op.
    fn finish(&mut self) {}

    /// Whether this sink ignores every µop it is handed ([`NullSink`], or a
    /// [`Tee`] of two such sinks). [`BatchSink`] samples this once at
    /// construction and short-circuits its staging copies when true, so
    /// warm-up iterations pay for program execution but not for trace
    /// materialization. Sinks that *consume* µops must leave this `false`
    /// (the default).
    fn discards_all(&self) -> bool {
        false
    }
}

/// Capacity of the [`BatchSink`] staging buffer. Large enough to hold the
/// µop burst of any single bytecode operation (the longest emitters are the
/// class-cache store sequences, well under 64 µops), small enough to stay
/// resident in L1.
///
/// This is also the batch size the rest of the pipeline standardizes on:
/// the binary codec frames traces at this many µops, and its replay loop
/// coalesces short frames so batched consumers (the timing model's
/// structure-of-arrays walk in particular) see full-capacity slices in
/// steady state. Batch *boundaries* carry no semantics — every consumer
/// must produce identical results for any chunking of the same stream,
/// an invariant pinned by the uarch equivalence suites.
pub const BATCH_CAPACITY: usize = 256;

/// Producer-side staging buffer that batches µops before crossing the
/// `dyn TraceSink` boundary.
///
/// Execution tiers thread `&mut BatchSink<'_>` (a concrete type) through
/// their hot paths, so pushes monomorphize and inline; the wrapped
/// `&mut dyn TraceSink` only sees [`TraceSink::emit_batch`] calls at flush
/// points. Flushing happens automatically when the buffer fills and on
/// [`BatchSink::flush`]/[`BatchSink::finish`]; producers flush once per
/// bytecode operation (and before any recursive re-entry that could observe
/// sink state), which preserves the exact global µop order.
pub struct BatchSink<'a> {
    inner: &'a mut dyn TraceSink,
    buf: Vec<Uop>,
    /// Cached [`TraceSink::discards_all`] of `inner`: when set, `push` is a
    /// no-op and the staged-µop copy (plus the flush call) is skipped
    /// entirely. Producers may additionally consult
    /// [`BatchSink::discarding`] to skip µop construction and dataflow
    /// token allocation — program semantics (values, profiling state,
    /// GC) never depend on either, so switching a run from a counting
    /// sink to a discarding one cannot change program behaviour.
    discard: bool,
}

impl std::fmt::Debug for BatchSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSink").field("buffered", &self.buf.len()).finish()
    }
}

impl<'a> BatchSink<'a> {
    /// Wrap a dynamic sink in a fresh staging buffer.
    pub fn new(inner: &'a mut dyn TraceSink) -> BatchSink<'a> {
        let discard = inner.discards_all();
        BatchSink { inner, buf: Vec::with_capacity(BATCH_CAPACITY), discard }
    }

    /// Stage one µop. Flushes first when the buffer is full, so the push
    /// itself never reallocates. When the wrapped sink discards everything,
    /// this returns immediately — the branch is on a cached bool, and the
    /// inliner sinks the caller's µop construction into the live path.
    #[inline(always)]
    pub fn push(&mut self, uop: Uop) {
        if self.discard {
            return;
        }
        if self.buf.len() == BATCH_CAPACITY {
            self.flush();
        }
        self.buf.push(uop);
    }

    /// Whether the wrapped sink discards everything (cached
    /// [`TraceSink::discards_all`]). Producers may consult this to skip
    /// *constructing* µops altogether — legal because a discarding run
    /// observes no trace, and the engine's dataflow tokens are pure trace
    /// metadata (the timing model keys on token identity and distance,
    /// both invariant under the global shift that skipped allocations
    /// induce).
    #[inline(always)]
    pub fn discarding(&self) -> bool {
        self.discard
    }

    /// Number of µops currently staged.
    #[inline]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Hand all staged µops to the wrapped sink in one virtual call.
    #[inline]
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.inner.emit_batch(&self.buf);
            self.buf.clear();
        }
    }

    /// Flush and forward [`TraceSink::finish`] to the wrapped sink.
    pub fn finish(&mut self) {
        self.flush();
        self.inner.finish();
    }
}

impl Drop for BatchSink<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A sink that discards everything. Used for warm-up iterations, where the
/// paper only keeps profiling state, not statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl NullSink {
    /// Create a new discarding sink.
    pub fn new() -> NullSink {
        NullSink
    }
}

impl TraceSink for NullSink {
    #[inline]
    fn emit(&mut self, _uop: &Uop) {}

    #[inline]
    fn emit_batch(&mut self, _uops: &[Uop]) {}

    fn discards_all(&self) -> bool {
        true
    }
}

/// Fans a trace out to two sinks.
#[derive(Debug)]
pub struct Tee<'a, A: ?Sized, B: ?Sized> {
    a: &'a mut A,
    b: &'a mut B,
}

impl<'a, A: TraceSink + ?Sized, B: TraceSink + ?Sized> Tee<'a, A, B> {
    /// Create a tee over two sinks.
    pub fn new(a: &'a mut A, b: &'a mut B) -> Self {
        Tee { a, b }
    }
}

impl<A: TraceSink + ?Sized, B: TraceSink + ?Sized> TraceSink for Tee<'_, A, B> {
    #[inline]
    fn emit(&mut self, uop: &Uop) {
        self.a.emit(uop);
        self.b.emit(uop);
    }

    /// Forward the whole batch to each side: two virtual calls per batch
    /// instead of two per µop.
    #[inline]
    fn emit_batch(&mut self, uops: &[Uop]) {
        self.a.emit_batch(uops);
        self.b.emit_batch(uops);
    }

    fn finish(&mut self) {
        self.a.finish();
        self.b.finish();
    }

    fn discards_all(&self) -> bool {
        self.a.discards_all() && self.b.discards_all()
    }
}

/// A sink that records every µop into a vector. Intended for tests and for
/// small golden traces, not for full benchmark runs.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The recorded trace.
    pub uops: Vec<Uop>,
}

impl VecSink {
    /// Create an empty recording sink.
    pub fn new() -> VecSink {
        VecSink { uops: Vec::new() }
    }

    /// Number of recorded µops.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn emit(&mut self, uop: &Uop) {
        self.uops.push(*uop);
    }

    #[inline]
    fn emit_batch(&mut self, uops: &[Uop]) {
        self.uops.extend_from_slice(uops);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::{Category, Region, Uop};

    #[test]
    fn tee_duplicates_uops() {
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        {
            let mut tee = Tee::new(&mut a, &mut b);
            tee.emit(&Uop::alu(0, Category::RestOfCode, Region::Baseline));
            tee.emit(&Uop::alu(4, Category::Check, Region::Optimized));
            tee.finish();
        }
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(a.uops[1].category, Category::Check);
    }

    #[test]
    fn null_sink_accepts_anything() {
        let mut s = NullSink::new();
        for pc in 0..100 {
            s.emit(&Uop::alu(pc, Category::RestOfCode, Region::Runtime));
        }
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        assert!(s.is_empty());
        s.emit(&Uop::alu(8, Category::MathAssume, Region::Optimized));
        assert_eq!(s.len(), 1);
        assert_eq!(s.uops[0].pc, 8);
    }

    #[test]
    fn emit_batch_default_matches_per_uop() {
        // A sink that only implements `emit` still consumes batches
        // correctly through the default method.
        struct CountOnly(u64);
        impl TraceSink for CountOnly {
            fn emit(&mut self, _uop: &Uop) {
                self.0 += 1;
            }
        }
        let trace: Vec<Uop> = (0..10)
            .map(|pc| Uop::alu(pc * 4, Category::RestOfCode, Region::Baseline))
            .collect();
        let mut s = CountOnly(0);
        s.emit_batch(&trace);
        assert_eq!(s.0, 10);
    }

    #[test]
    fn batch_sink_preserves_order_and_flushes_on_drop() {
        let mut v = VecSink::new();
        {
            let mut b = BatchSink::new(&mut v);
            for pc in 0..5 {
                b.push(Uop::alu(pc, Category::Check, Region::Optimized));
            }
            assert_eq!(b.buffered(), 5);
            b.flush();
            assert_eq!(b.buffered(), 0);
            b.push(Uop::alu(99, Category::RestOfCode, Region::Runtime));
            // Dropped without an explicit flush: the tail must still arrive.
        }
        assert_eq!(v.len(), 6);
        let pcs: Vec<u64> = v.uops.iter().map(|u| u.pc).collect();
        assert_eq!(pcs, vec![0, 1, 2, 3, 4, 99]);
    }

    #[test]
    fn batch_sink_auto_flushes_at_capacity() {
        let mut v = VecSink::new();
        let mut b = BatchSink::new(&mut v);
        let n = BATCH_CAPACITY + 17;
        for pc in 0..n as u64 {
            b.push(Uop::alu(pc, Category::RestOfCode, Region::Baseline));
        }
        // One auto-flush happened; the remainder is still staged.
        assert_eq!(b.buffered(), 17);
        b.finish();
        drop(b);
        assert_eq!(v.len(), n);
        assert!(v.uops.iter().enumerate().all(|(i, u)| u.pc == i as u64));
    }

    #[test]
    fn batch_sink_over_null_sink_discards_without_staging() {
        let mut n = NullSink::new();
        let mut b = BatchSink::new(&mut n);
        for pc in 0..(BATCH_CAPACITY as u64 * 2) {
            b.push(Uop::alu(pc, Category::RestOfCode, Region::Baseline));
        }
        assert_eq!(b.buffered(), 0, "discard mode must never stage µops");
    }

    #[test]
    fn discards_all_propagates_through_tee() {
        let mut n1 = NullSink::new();
        let mut n2 = NullSink::new();
        assert!(Tee::new(&mut n1, &mut n2).discards_all());
        let mut v = VecSink::new();
        let mut n3 = NullSink::new();
        assert!(!Tee::new(&mut v, &mut n3).discards_all());
        assert!(!VecSink::new().discards_all());
    }

    #[test]
    fn tee_batches_to_both_sides() {
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        {
            let mut tee = Tee::new(&mut a, &mut b);
            let trace: Vec<Uop> = (0..4)
                .map(|pc| Uop::alu(pc, Category::TagUntag, Region::Optimized))
                .collect();
            tee.emit_batch(&trace);
        }
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        assert_eq!(a.uops, b.uops);
    }
}

//! Streaming trace consumption.
//!
//! Producers (the execution tiers) push each retired µop into a
//! [`TraceSink`]. Consumers include [`crate::counters::CounterSink`] (for
//! the instruction-mix figures) and the timing model in `checkelide-uarch`
//! (for the cycle/energy figures). [`Tee`] fans one trace out to two sinks,
//! so a single program run can feed both.

use crate::uop::Uop;

/// A consumer of retired µops.
pub trait TraceSink {
    /// Consume one retired µop.
    fn emit(&mut self, uop: &Uop);

    /// Notification that the producer finished (end of measured region).
    /// Consumers may finalize statistics here. Default: no-op.
    fn finish(&mut self) {}
}

/// A sink that discards everything. Used for warm-up iterations, where the
/// paper only keeps profiling state, not statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl NullSink {
    /// Create a new discarding sink.
    pub fn new() -> NullSink {
        NullSink
    }
}

impl TraceSink for NullSink {
    #[inline]
    fn emit(&mut self, _uop: &Uop) {}
}

/// Fans a trace out to two sinks.
#[derive(Debug)]
pub struct Tee<'a, A: ?Sized, B: ?Sized> {
    a: &'a mut A,
    b: &'a mut B,
}

impl<'a, A: TraceSink + ?Sized, B: TraceSink + ?Sized> Tee<'a, A, B> {
    /// Create a tee over two sinks.
    pub fn new(a: &'a mut A, b: &'a mut B) -> Self {
        Tee { a, b }
    }
}

impl<A: TraceSink + ?Sized, B: TraceSink + ?Sized> TraceSink for Tee<'_, A, B> {
    #[inline]
    fn emit(&mut self, uop: &Uop) {
        self.a.emit(uop);
        self.b.emit(uop);
    }

    fn finish(&mut self) {
        self.a.finish();
        self.b.finish();
    }
}

/// A sink that records every µop into a vector. Intended for tests and for
/// small golden traces, not for full benchmark runs.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The recorded trace.
    pub uops: Vec<Uop>,
}

impl VecSink {
    /// Create an empty recording sink.
    pub fn new() -> VecSink {
        VecSink { uops: Vec::new() }
    }

    /// Number of recorded µops.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn emit(&mut self, uop: &Uop) {
        self.uops.push(*uop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::{Category, Region, Uop};

    #[test]
    fn tee_duplicates_uops() {
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        {
            let mut tee = Tee::new(&mut a, &mut b);
            tee.emit(&Uop::alu(0, Category::RestOfCode, Region::Baseline));
            tee.emit(&Uop::alu(4, Category::Check, Region::Optimized));
            tee.finish();
        }
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(a.uops[1].category, Category::Check);
    }

    #[test]
    fn null_sink_accepts_anything() {
        let mut s = NullSink::new();
        for pc in 0..100 {
            s.emit(&Uop::alu(pc, Category::RestOfCode, Region::Runtime));
        }
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        assert!(s.is_empty());
        s.emit(&Uop::alu(8, Category::MathAssume, Region::Optimized));
        assert_eq!(s.len(), 1);
        assert_eq!(s.uops[0].pc, 8);
    }
}

//! Compact binary µop trace format: record once, replay everywhere.
//!
//! The trace-driven methodology of the paper captures one engine execution
//! and feeds it to every microarchitectural configuration. This module
//! provides the on-disk representation: a [`TraceWriter`] that records any
//! µop stream produced through the [`TraceSink`] interface, and a streaming
//! [`TraceReader`] that replays the recorded stream into any sink via
//! [`TraceSink::emit_batch`].
//!
//! # Format
//!
//! ```text
//! header   := magic "CKTR" | u8 version
//! frame    := varint count (1..) | varint byte_len | payload[byte_len]
//! trailer  := varint 0 | varint total_uops | magic "KTRE"
//! ```
//!
//! Frames hold up to [`BATCH_CAPACITY`] µops so a replay pass hands the
//! consumer the same slice granularity the live engine does. Within a
//! frame, each µop is encoded as:
//!
//! * a 1-byte index into a *shape dictionary* (the packed combination of
//!   kind, category, region, provenance, taken, memory flags, operand
//!   presence and access width — see [`Shape`]); the escape byte `0xFF`
//!   is followed by 4 literal shape bytes and appends a new dictionary
//!   entry on both sides,
//! * a zigzag-varint PC delta against the previous µop's PC,
//! * zigzag-varint token deltas for each present operand against a
//!   rolling previous-token value (producers allocate tokens from small
//!   rotating or monotonic namespaces, so deltas are tiny),
//! * a zigzag-varint address delta against the previous memory address,
//!   when the shape says a memory reference is present.
//!
//! Dictionary and delta state persist *across* frames; a reader must
//! consume frames in order (which the replay loop does). Real traces use
//! a few dozen shapes and exhibit strong PC/address locality, compressing
//! to well under `size_of::<Uop>() / 8` per µop.
//!
//! Decoding is paranoid: every frame must consume exactly `byte_len`
//! bytes and produce exactly `count` µops, all enum codes are validated,
//! and any violation surfaces as a typed [`TraceError`] rather than a
//! panic — a requirement for treating cache files as untrusted input.

use crate::trace::{TraceSink, BATCH_CAPACITY};
use crate::uop::{Category, MemRef, Provenance, Region, Tok, Uop, UopKind};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::Path;

/// Trace file magic ("ChecKelide TRace").
pub const TRACE_MAGIC: [u8; 4] = *b"CKTR";
/// End-of-trace magic, validated after the trailer.
pub const TRACE_END_MAGIC: [u8; 4] = *b"KTRE";
/// On-disk format version. Bump on any encoding change; readers reject
/// other versions with [`TraceError::BadVersion`].
pub const TRACE_VERSION: u8 = 1;

/// Upper bound on a frame's µop count (sanity cap against corruption).
const MAX_FRAME_COUNT: u64 = BATCH_CAPACITY as u64;
/// Upper bound on a frame's payload size. A worst-case µop (new shape +
/// maximal varints) is < 64 bytes; 256 × 64 = 16 KiB, cap at 1 MiB for
/// slack.
const MAX_FRAME_BYTES: u64 = 1 << 20;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed decode/IO failure. Corrupt or truncated trace files must fail
/// with one of these — never a panic.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The file's version byte is not [`TRACE_VERSION`].
    BadVersion(u8),
    /// Structurally invalid data at `offset` bytes into the stream.
    Corrupt {
        /// Byte offset (from the start of the file) of the violation.
        offset: u64,
        /// What was wrong.
        what: &'static str,
    },
    /// The stream ended before the trailer (e.g. a partial write).
    Truncated {
        /// Byte offset at which input ran out.
        offset: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a µop trace (bad magic)"),
            TraceError::BadVersion(v) => {
                write!(f, "unsupported trace version {v} (expected {TRACE_VERSION})")
            }
            TraceError::Corrupt { offset, what } => {
                write!(f, "corrupt trace at byte {offset}: {what}")
            }
            TraceError::Truncated { offset } => {
                write!(f, "truncated trace (input ended at byte {offset})")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            // Reads use read_exact; a short read is a truncation, but we
            // lose the offset here — callers that care track it themselves.
            TraceError::Truncated { offset: 0 }
        } else {
            TraceError::Io(e)
        }
    }
}

// ---------------------------------------------------------------------------
// Enum <-> code tables
// ---------------------------------------------------------------------------

const KIND_TABLE: [UopKind; 15] = [
    UopKind::Alu,
    UopKind::Mul,
    UopKind::Div,
    UopKind::FpAdd,
    UopKind::FpMul,
    UopKind::FpDiv,
    UopKind::Load,
    UopKind::Store,
    UopKind::Branch,
    UopKind::Jump,
    UopKind::Move,
    UopKind::MovClassId,
    UopKind::MovClassIdArray,
    UopKind::MovStoreClassCache,
    UopKind::MovStoreClassCacheArray,
];

#[inline]
fn kind_code(k: UopKind) -> u32 {
    match k {
        UopKind::Alu => 0,
        UopKind::Mul => 1,
        UopKind::Div => 2,
        UopKind::FpAdd => 3,
        UopKind::FpMul => 4,
        UopKind::FpDiv => 5,
        UopKind::Load => 6,
        UopKind::Store => 7,
        UopKind::Branch => 8,
        UopKind::Jump => 9,
        UopKind::Move => 10,
        UopKind::MovClassId => 11,
        UopKind::MovClassIdArray => 12,
        UopKind::MovStoreClassCache => 13,
        UopKind::MovStoreClassCacheArray => 14,
    }
}

const PROV_TABLE: [Provenance; 3] =
    [Provenance::None, Provenance::PropertyLoad, Provenance::ElementsLoad];

#[inline]
fn prov_code(p: Provenance) -> u32 {
    match p {
        Provenance::None => 0,
        Provenance::PropertyLoad => 1,
        Provenance::ElementsLoad => 2,
    }
}

const REGION_TABLE: [Region; 3] = [Region::Optimized, Region::Baseline, Region::Runtime];
const CATEGORY_TABLE: [Category; 5] = [
    Category::Check,
    Category::TagUntag,
    Category::MathAssume,
    Category::OtherOptimized,
    Category::RestOfCode,
];

// ---------------------------------------------------------------------------
// Shape packing
// ---------------------------------------------------------------------------

/// The packed "shape" of a µop: everything except PC, tokens and the
/// memory address. Real traces exercise only a few dozen distinct shapes,
/// so they are dictionary-coded to a single byte.
///
/// Layout (little-endian u32):
///
/// ```text
/// byte 0: kind[3:0] | category[6:4]  | taken[7]
/// byte 1: region[1:0] | prov[3:2] | has_mem[4] | mem_store[5] | src0[6] | src1[7]
/// byte 2: mem_size[5:0] | has_dst[6]  (bit 7 reserved, zero)
/// byte 3: reserved, zero
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Shape(u32);

impl Shape {
    fn pack(u: &Uop) -> Shape {
        let b0 = kind_code(u.kind)
            | (u.category.index() as u32) << 4
            | (u.taken as u32) << 7;
        let (has_mem, mem_store, mem_size) = match u.mem {
            Some(m) => (1u32, m.is_store as u32, m.size as u32),
            None => (0, 0, 0),
        };
        let b1 = u.region.index() as u32
            | prov_code(u.provenance) << 2
            | has_mem << 4
            | mem_store << 5
            | (u.srcs[0].is_some() as u32) << 6
            | (u.srcs[1].is_some() as u32) << 7;
        let b2 = (mem_size & 0x3F) | (u.dst.is_some() as u32) << 6;
        Shape(b0 | b1 << 8 | b2 << 16)
    }

    /// Validate and split into decoded fields. `offset` is only for error
    /// reporting.
    #[allow(clippy::type_complexity)]
    fn unpack(
        self,
        offset: u64,
    ) -> Result<ShapeFields, TraceError> {
        let b0 = self.0 & 0xFF;
        let b1 = (self.0 >> 8) & 0xFF;
        let b2 = (self.0 >> 16) & 0xFF;
        let b3 = (self.0 >> 24) & 0xFF;
        if b3 != 0 || b2 & 0x80 != 0 {
            return Err(TraceError::Corrupt { offset, what: "reserved shape bits set" });
        }
        let kind = *KIND_TABLE
            .get((b0 & 0x0F) as usize)
            .ok_or(TraceError::Corrupt { offset, what: "invalid µop kind" })?;
        let category = *CATEGORY_TABLE
            .get(((b0 >> 4) & 0x7) as usize)
            .ok_or(TraceError::Corrupt { offset, what: "invalid category" })?;
        let taken = b0 >> 7 != 0;
        let region = *REGION_TABLE
            .get((b1 & 0x3) as usize)
            .ok_or(TraceError::Corrupt { offset, what: "invalid region" })?;
        let provenance = *PROV_TABLE
            .get(((b1 >> 2) & 0x3) as usize)
            .ok_or(TraceError::Corrupt { offset, what: "invalid provenance" })?;
        let has_mem = b1 & 0x10 != 0;
        let mem_store = b1 & 0x20 != 0;
        let has_src0 = b1 & 0x40 != 0;
        let has_src1 = b1 & 0x80 != 0;
        let mem_size = (b2 & 0x3F) as u8;
        let has_dst = b2 & 0x40 != 0;
        if !has_mem && (mem_store || mem_size != 0) {
            return Err(TraceError::Corrupt { offset, what: "memory bits without memory ref" });
        }
        Ok(ShapeFields {
            kind,
            category,
            region,
            provenance,
            taken,
            has_mem,
            mem_store,
            mem_size,
            has_src0,
            has_src1,
            has_dst,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct ShapeFields {
    kind: UopKind,
    category: Category,
    region: Region,
    provenance: Provenance,
    taken: bool,
    has_mem: bool,
    mem_store: bool,
    mem_size: u8,
    has_src0: bool,
    has_src1: bool,
    has_dst: bool,
}

/// Dictionary escape byte: followed by 4 literal shape bytes.
const SHAPE_ESCAPE: u8 = 0xFF;
/// Maximum dictionary size (index `0xFF` is the escape).
const MAX_SHAPES: usize = 255;

// ---------------------------------------------------------------------------
// Varint helpers
// ---------------------------------------------------------------------------

#[inline]
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_svarint(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, zigzag(v));
}

/// Cursor over an in-memory frame payload with offset-aware errors.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
    /// File offset of `buf[0]`, for error reporting.
    base: u64,
}

impl<'a> Cur<'a> {
    #[inline]
    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    #[inline]
    fn byte(&mut self) -> Result<u8, TraceError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(TraceError::Corrupt { offset: self.offset(), what: "frame payload underrun" })?;
        self.pos += 1;
        Ok(b)
    }

    #[inline]
    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(TraceError::Corrupt {
                    offset: self.offset(),
                    what: "varint overflows 64 bits",
                });
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(TraceError::Corrupt {
                    offset: self.offset(),
                    what: "varint too long",
                });
            }
        }
    }

    #[inline]
    fn svarint(&mut self) -> Result<i64, TraceError> {
        Ok(unzigzag(self.varint()?))
    }
}

/// Read a varint directly from a reader, tracking the stream offset.
fn read_varint(r: &mut impl Read, offset: &mut u64) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        match r.read_exact(&mut b) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(TraceError::Truncated { offset: *offset });
            }
            Err(e) => return Err(TraceError::Io(e)),
        }
        *offset += 1;
        let b = b[0];
        if shift == 63 && b > 1 {
            return Err(TraceError::Corrupt { offset: *offset, what: "varint overflows 64 bits" });
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt { offset: *offset, what: "varint too long" });
        }
    }
}

// ---------------------------------------------------------------------------
// Delta state (shared encode/decode)
// ---------------------------------------------------------------------------

/// Rolling prediction state. Persisted across frames on both sides.
#[derive(Debug, Clone, Copy)]
struct DeltaState {
    prev_pc: u64,
    prev_addr: u64,
    prev_tok: u32,
}

impl DeltaState {
    fn new() -> DeltaState {
        DeltaState { prev_pc: 0, prev_addr: 0, prev_tok: 0 }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Aggregate statistics of a finished recording.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceWriteStats {
    /// Total µops recorded.
    pub uops: u64,
    /// Total encoded bytes (header + frames + trailer).
    pub bytes: u64,
}

/// A [`TraceSink`] that encodes every µop it receives into the compact
/// binary format.
///
/// The sink interface cannot return errors, so I/O failures are latched
/// and surfaced by [`TraceWriter::finish_file`]; once an error is latched
/// all further input is discarded.
pub struct TraceWriter<W: Write> {
    out: Option<W>,
    err: Option<io::Error>,
    /// Staged µops, flushed as one frame per [`BATCH_CAPACITY`].
    stage: Vec<Uop>,
    /// Scratch payload buffer, reused across frames.
    payload: Vec<u8>,
    /// Scratch frame-header buffer.
    head: Vec<u8>,
    shapes: std::collections::HashMap<u32, u8>,
    delta: DeltaState,
    uops: u64,
    bytes: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Start a recording: writes the file header immediately.
    pub fn new(mut out: W) -> io::Result<TraceWriter<W>> {
        out.write_all(&TRACE_MAGIC)?;
        out.write_all(&[TRACE_VERSION])?;
        Ok(TraceWriter {
            out: Some(out),
            err: None,
            stage: Vec::with_capacity(BATCH_CAPACITY),
            payload: Vec::with_capacity(4096),
            head: Vec::with_capacity(16),
            shapes: std::collections::HashMap::new(),
            delta: DeltaState::new(),
            uops: 0,
            bytes: 5,
        })
    }

    /// Encode and write one frame from the staged µops.
    fn flush_frame(&mut self) {
        if self.stage.is_empty() || self.err.is_some() {
            self.stage.clear();
            return;
        }
        self.payload.clear();
        for u in &self.stage {
            let shape = Shape::pack(u);
            match self.shapes.get(&shape.0) {
                Some(&ix) => self.payload.push(ix),
                None => {
                    self.payload.push(SHAPE_ESCAPE);
                    self.payload.extend_from_slice(&shape.0.to_le_bytes());
                    if self.shapes.len() < MAX_SHAPES {
                        let ix = self.shapes.len() as u8;
                        self.shapes.insert(shape.0, ix);
                    }
                }
            }
            put_svarint(&mut self.payload, u.pc.wrapping_sub(self.delta.prev_pc) as i64);
            self.delta.prev_pc = u.pc;
            if u.srcs[0].is_some() {
                put_svarint(
                    &mut self.payload,
                    i64::from(u.srcs[0].0.wrapping_sub(self.delta.prev_tok) as i32),
                );
                self.delta.prev_tok = u.srcs[0].0;
            }
            if u.srcs[1].is_some() {
                put_svarint(
                    &mut self.payload,
                    i64::from(u.srcs[1].0.wrapping_sub(self.delta.prev_tok) as i32),
                );
                self.delta.prev_tok = u.srcs[1].0;
            }
            if u.dst.is_some() {
                put_svarint(
                    &mut self.payload,
                    i64::from(u.dst.0.wrapping_sub(self.delta.prev_tok) as i32),
                );
                self.delta.prev_tok = u.dst.0;
            }
            if let Some(m) = u.mem {
                put_svarint(&mut self.payload, m.addr.wrapping_sub(self.delta.prev_addr) as i64);
                self.delta.prev_addr = m.addr;
            }
        }
        self.head.clear();
        put_varint(&mut self.head, self.stage.len() as u64);
        put_varint(&mut self.head, self.payload.len() as u64);
        let out = self.out.as_mut().expect("writer not finished");
        let r = out.write_all(&self.head).and_then(|()| out.write_all(&self.payload));
        if let Err(e) = r {
            self.err = Some(e);
        } else {
            self.uops += self.stage.len() as u64;
            self.bytes += (self.head.len() + self.payload.len()) as u64;
        }
        self.stage.clear();
    }

    /// Finish the recording: flush staged µops, write the trailer, and
    /// return the underlying writer plus stats. Surfaces any I/O error
    /// latched during recording.
    pub fn finish_file(mut self) -> Result<(W, TraceWriteStats), TraceError> {
        self.flush_frame();
        if let Some(e) = self.err.take() {
            return Err(TraceError::Io(e));
        }
        self.head.clear();
        put_varint(&mut self.head, 0);
        put_varint(&mut self.head, self.uops);
        self.head.extend_from_slice(&TRACE_END_MAGIC);
        let mut out = self.out.take().expect("writer not finished");
        out.write_all(&self.head).map_err(TraceError::Io)?;
        out.flush().map_err(TraceError::Io)?;
        self.bytes += self.head.len() as u64;
        Ok((out, TraceWriteStats { uops: self.uops, bytes: self.bytes }))
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    #[inline]
    fn emit(&mut self, uop: &Uop) {
        self.stage.push(*uop);
        if self.stage.len() >= BATCH_CAPACITY {
            self.flush_frame();
        }
    }

    fn emit_batch(&mut self, uops: &[Uop]) {
        let mut rest = uops;
        while !rest.is_empty() {
            let room = BATCH_CAPACITY - self.stage.len();
            let n = rest.len().min(room);
            self.stage.extend_from_slice(&rest[..n]);
            rest = &rest[n..];
            if self.stage.len() >= BATCH_CAPACITY {
                self.flush_frame();
            }
        }
    }

    fn finish(&mut self) {
        // Frames must not be left half-staged between iterations; flush so
        // the file is frame-complete at every sink boundary. The trailer is
        // only written by `finish_file`.
        self.flush_frame();
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Streaming decoder for the compact trace format.
///
/// Use [`TraceReader::replay`] to feed an entire trace into a sink, or
/// [`TraceReader::next_frame`] to pull decoded µop slices one frame at a
/// time.
pub struct TraceReader<R: Read> {
    inp: R,
    /// Stream offset, for error reporting.
    offset: u64,
    shapes: Vec<ShapeFields>,
    delta: DeltaState,
    /// Reusable payload buffer.
    payload: Vec<u8>,
    /// Reusable decoded-frame buffer.
    frame: Vec<Uop>,
    /// Total µops decoded so far.
    decoded: u64,
    /// Set once the trailer has been consumed and validated.
    done: bool,
}

impl TraceReader<BufReader<File>> {
    /// Open a trace file for replay.
    pub fn open(path: &Path) -> Result<TraceReader<BufReader<File>>, TraceError> {
        let f = File::open(path).map_err(TraceError::Io)?;
        TraceReader::new(BufReader::with_capacity(1 << 16, f))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wrap a reader; validates the header eagerly.
    pub fn new(mut inp: R) -> Result<TraceReader<R>, TraceError> {
        let mut head = [0u8; 5];
        let mut got = 0usize;
        while got < head.len() {
            match inp.read(&mut head[got..]) {
                Ok(0) => return Err(TraceError::Truncated { offset: got as u64 }),
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TraceError::Io(e)),
            }
        }
        if head[..4] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        if head[4] != TRACE_VERSION {
            return Err(TraceError::BadVersion(head[4]));
        }
        Ok(TraceReader {
            inp,
            offset: 5,
            shapes: Vec::new(),
            delta: DeltaState::new(),
            payload: Vec::with_capacity(4096),
            frame: Vec::with_capacity(BATCH_CAPACITY),
            decoded: 0,
            done: false,
        })
    }

    /// Total µops decoded so far (equals the trace length once
    /// `next_frame` has returned `None`).
    #[inline]
    pub fn uops_decoded(&self) -> u64 {
        self.decoded
    }

    /// Read one frame header + payload into `self.payload`. Returns the
    /// µop count, or `None` after a validated trailer.
    fn read_frame_raw(&mut self) -> Result<Option<u64>, TraceError> {
        if self.done {
            return Ok(None);
        }
        let count = read_varint(&mut self.inp, &mut self.offset)?;
        if count == 0 {
            // Trailer: total count + end magic.
            let total = read_varint(&mut self.inp, &mut self.offset)?;
            if total != self.decoded {
                return Err(TraceError::Corrupt {
                    offset: self.offset,
                    what: "trailer µop count mismatch",
                });
            }
            let mut magic = [0u8; 4];
            match self.inp.read_exact(&mut magic) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    return Err(TraceError::Truncated { offset: self.offset });
                }
                Err(e) => return Err(TraceError::Io(e)),
            }
            self.offset += 4;
            if magic != TRACE_END_MAGIC {
                return Err(TraceError::Corrupt { offset: self.offset, what: "bad end magic" });
            }
            self.done = true;
            return Ok(None);
        }
        if count > MAX_FRAME_COUNT {
            return Err(TraceError::Corrupt {
                offset: self.offset,
                what: "frame count exceeds capacity",
            });
        }
        let byte_len = read_varint(&mut self.inp, &mut self.offset)?;
        if byte_len == 0 || byte_len > MAX_FRAME_BYTES {
            return Err(TraceError::Corrupt {
                offset: self.offset,
                what: "implausible frame byte length",
            });
        }
        self.payload.clear();
        self.payload.resize(byte_len as usize, 0);
        match self.inp.read_exact(&mut self.payload) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(TraceError::Truncated { offset: self.offset });
            }
            Err(e) => return Err(TraceError::Io(e)),
        }
        Ok(Some(count))
    }

    /// Decode the payload currently in `self.payload` into `self.frame`.
    fn decode_payload(&mut self, count: u64, base: u64) -> Result<(), TraceError> {
        self.frame.clear();
        let mut cur = Cur { buf: &self.payload, pos: 0, base };
        for _ in 0..count {
            let ix = cur.byte()?;
            let fields = if ix == SHAPE_ESCAPE {
                let off = cur.offset();
                let raw = u32::from_le_bytes([cur.byte()?, cur.byte()?, cur.byte()?, cur.byte()?]);
                let fields = Shape(raw).unpack(off)?;
                if self.shapes.len() < MAX_SHAPES {
                    self.shapes.push(fields);
                }
                fields
            } else {
                *self.shapes.get(ix as usize).ok_or(TraceError::Corrupt {
                    offset: cur.offset(),
                    what: "shape index out of range",
                })?
            };
            let pc = self.delta.prev_pc.wrapping_add(cur.svarint()? as u64);
            self.delta.prev_pc = pc;
            let mut srcs = [Tok::NONE; 2];
            if fields.has_src0 {
                let t = self.delta.prev_tok.wrapping_add(cur.svarint()? as u32);
                if t == 0 {
                    return Err(TraceError::Corrupt {
                        offset: cur.offset(),
                        what: "present operand decodes to Tok::NONE",
                    });
                }
                srcs[0] = Tok(t);
                self.delta.prev_tok = t;
            }
            if fields.has_src1 {
                let t = self.delta.prev_tok.wrapping_add(cur.svarint()? as u32);
                if t == 0 {
                    return Err(TraceError::Corrupt {
                        offset: cur.offset(),
                        what: "present operand decodes to Tok::NONE",
                    });
                }
                srcs[1] = Tok(t);
                self.delta.prev_tok = t;
            }
            let mut dst = Tok::NONE;
            if fields.has_dst {
                let t = self.delta.prev_tok.wrapping_add(cur.svarint()? as u32);
                if t == 0 {
                    return Err(TraceError::Corrupt {
                        offset: cur.offset(),
                        what: "present operand decodes to Tok::NONE",
                    });
                }
                dst = Tok(t);
                self.delta.prev_tok = t;
            }
            let mem = if fields.has_mem {
                let addr = self.delta.prev_addr.wrapping_add(cur.svarint()? as u64);
                self.delta.prev_addr = addr;
                Some(MemRef { addr, size: fields.mem_size, is_store: fields.mem_store })
            } else {
                None
            };
            self.frame.push(Uop {
                kind: fields.kind,
                category: fields.category,
                pc,
                mem,
                srcs,
                dst,
                provenance: fields.provenance,
                region: fields.region,
                taken: fields.taken,
            });
        }
        if cur.pos != self.payload.len() {
            return Err(TraceError::Corrupt {
                offset: cur.offset(),
                what: "frame payload has trailing bytes",
            });
        }
        self.decoded += count;
        Ok(())
    }

    /// Decode the next frame. Returns `None` after the validated trailer.
    pub fn next_frame(&mut self) -> Result<Option<&[Uop]>, TraceError> {
        let base = self.offset;
        match self.read_frame_raw()? {
            None => Ok(None),
            Some(count) => {
                self.offset += self.payload.len() as u64;
                self.decode_payload(count, base)?;
                Ok(Some(&self.frame))
            }
        }
    }

    /// Replay the whole trace into `sink` via `emit_batch`, returning the
    /// number of µops replayed.
    ///
    /// When the sink discards everything ([`TraceSink::discards_all`]),
    /// frames are skipped without decoding — replay then runs at I/O
    /// speed, the NullSink-like regime the cache's warm path relies on.
    pub fn replay(&mut self, sink: &mut dyn TraceSink) -> Result<u64, TraceError> {
        if sink.discards_all() {
            // Fast path: count µops without materializing them. Dictionary
            // and delta state don't matter because *every* frame is skipped.
            while let Some(count) = self.read_frame_raw()? {
                self.offset += self.payload.len() as u64;
                self.decoded += count;
            }
            return Ok(self.decoded);
        }
        // Frames are written at [`BATCH_CAPACITY`], but writer flushes at
        // sink boundaries can leave short frames mid-file. Coalesce those
        // through a staging buffer so the consumer always sees
        // full-capacity batches: batch boundaries are semantically inert
        // (pinned by the uarch equivalence suites), and full batches
        // amortize the per-call setup of batched consumers such as the
        // timing model's structure-of-arrays walk. Full frames with an
        // empty stage — the entire steady state of a real trace — are
        // handed through without a copy.
        let mut stage: Vec<Uop> = Vec::new();
        while let Some(frame) = self.next_frame()? {
            if stage.is_empty() && frame.len() == BATCH_CAPACITY {
                sink.emit_batch(frame);
                continue;
            }
            let mut rest = frame;
            while !rest.is_empty() {
                let take = (BATCH_CAPACITY - stage.len()).min(rest.len());
                stage.extend_from_slice(&rest[..take]);
                rest = &rest[take..];
                if stage.len() == BATCH_CAPACITY {
                    sink.emit_batch(&stage);
                    stage.clear();
                }
            }
        }
        if !stage.is_empty() {
            sink.emit_batch(&stage);
        }
        Ok(self.decoded)
    }
}

// ---------------------------------------------------------------------------
// Convenience helpers
// ---------------------------------------------------------------------------

/// Encode a µop slice into an in-memory trace file image.
pub fn encode_trace(uops: &[Uop]) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new()).expect("Vec write cannot fail");
    w.emit_batch(uops);
    let (buf, _) = w.finish_file().expect("Vec write cannot fail");
    buf
}

/// Decode an in-memory trace file image into a µop vector.
pub fn decode_trace(bytes: &[u8]) -> Result<Vec<Uop>, TraceError> {
    let mut r = TraceReader::new(bytes)?;
    let mut out = Vec::new();
    while let Some(frame) = r.next_frame()? {
        out.extend_from_slice(frame);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{NullSink, VecSink};

    fn sample_trace() -> Vec<Uop> {
        let mut v = Vec::new();
        let mut pc = 0x4000u64;
        let mut tok = 7u32;
        for i in 0..1000u64 {
            pc += 4 + (i % 3) * 4;
            tok += 1;
            let u = match i % 7 {
                0 => Uop::alu(pc, Category::Check, Region::Optimized)
                    .with_srcs(Tok(tok), Tok::NONE)
                    .with_dst(Tok(tok + 1))
                    .with_provenance(Provenance::PropertyLoad),
                1 => Uop::load(pc, 0x10000 + i * 8, Category::OtherOptimized, Region::Optimized)
                    .with_dst(Tok(tok)),
                2 => Uop::store(pc, 0x20000 + i * 16, Category::RestOfCode, Region::Baseline)
                    .with_srcs(Tok(tok), Tok(tok.wrapping_sub(3))),
                3 => Uop::branch(pc, i % 2 == 0, Category::TagUntag, Region::Runtime),
                4 => Uop::new(UopKind::MovClassId, pc, Category::Check, Region::Optimized)
                    .with_srcs(Tok(tok), Tok::NONE)
                    .with_dst(Tok(tok + 2)),
                5 => {
                    let mut u = Uop::new(
                        UopKind::MovStoreClassCacheArray,
                        pc,
                        Category::MathAssume,
                        Region::Optimized,
                    );
                    u.mem = Some(MemRef::store(0x30000 + i * 8));
                    u.provenance = Provenance::ElementsLoad;
                    u
                }
                _ => Uop::new(UopKind::FpMul, pc, Category::OtherOptimized, Region::Optimized)
                    .with_srcs(Tok(tok), Tok(tok + 1))
                    .with_dst(Tok(tok + 2)),
            };
            v.push(u);
        }
        v
    }

    #[test]
    fn round_trip_identity() {
        let trace = sample_trace();
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).expect("decodes");
        assert_eq!(trace, back);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode_trace(&[]);
        assert_eq!(decode_trace(&bytes).expect("decodes"), Vec::new());
    }

    #[test]
    fn compression_beats_8x() {
        let trace = sample_trace();
        let bytes = encode_trace(&trace);
        let raw = trace.len() * std::mem::size_of::<Uop>();
        assert!(
            bytes.len() * 8 <= raw,
            "encoded {} bytes vs raw {} ({}x)",
            bytes.len(),
            raw,
            raw as f64 / bytes.len() as f64
        );
    }

    #[test]
    fn replay_matches_decode() {
        let trace = sample_trace();
        let bytes = encode_trace(&trace);
        let mut r = TraceReader::new(&bytes[..]).expect("header ok");
        let mut sink = VecSink::new();
        let n = r.replay(&mut sink).expect("replays");
        assert_eq!(n, trace.len() as u64);
        assert_eq!(sink.uops, trace);
    }

    #[test]
    fn replay_discarding_counts_without_decoding() {
        let trace = sample_trace();
        let bytes = encode_trace(&trace);
        let mut r = TraceReader::new(&bytes[..]).expect("header ok");
        let mut null = NullSink::new();
        assert_eq!(r.replay(&mut null).expect("replays"), trace.len() as u64);
    }

    #[test]
    fn replay_coalesces_short_frames_into_full_batches() {
        // Writer flushes at sink boundaries leave short frames mid-file;
        // replay must still hand the consumer full-capacity batches (plus
        // one short tail), without perturbing the µop stream.
        let trace = sample_trace();
        let mut w = TraceWriter::new(Vec::new()).expect("vec");
        for chunk in trace.chunks(100) {
            w.emit_batch(chunk);
            w.finish(); // frame boundary: 100-µop frames mid-file
        }
        let (bytes, stats) = w.finish_file().expect("vec");
        assert_eq!(stats.uops, trace.len() as u64);

        struct BatchSizes(Vec<usize>, Vec<Uop>);
        impl TraceSink for BatchSizes {
            fn emit(&mut self, u: &Uop) {
                self.0.push(1);
                self.1.push(*u);
            }
            fn emit_batch(&mut self, uops: &[Uop]) {
                self.0.push(uops.len());
                self.1.extend_from_slice(uops);
            }
        }
        let mut s = BatchSizes(Vec::new(), Vec::new());
        let mut r = TraceReader::new(&bytes[..]).expect("header");
        assert_eq!(r.replay(&mut s).expect("replays"), trace.len() as u64);
        assert_eq!(s.1, trace, "coalescing must preserve the µop stream");
        let (last, body) = s.0.split_last().expect("at least one batch");
        assert!(
            body.iter().all(|&n| n == BATCH_CAPACITY),
            "every batch but the tail must be full: {:?}",
            s.0
        );
        assert_eq!(*last, trace.len() % BATCH_CAPACITY);
    }

    #[test]
    fn writer_emit_matches_emit_batch() {
        let trace = sample_trace();
        let via_batch = encode_trace(&trace);
        let mut w = TraceWriter::new(Vec::new()).expect("vec");
        for u in &trace {
            w.emit(u);
        }
        let (via_emit, stats) = w.finish_file().expect("vec");
        assert_eq!(via_batch, via_emit);
        assert_eq!(stats.uops, trace.len() as u64);
        assert_eq!(stats.bytes, via_emit.len() as u64);
    }

    #[test]
    fn mid_stream_finish_flushes_partial_frame() {
        // `finish` between iterations must not lose or duplicate µops.
        let trace = sample_trace();
        let mut w = TraceWriter::new(Vec::new()).expect("vec");
        w.emit_batch(&trace[..13]);
        TraceSink::finish(&mut w);
        w.emit_batch(&trace[13..]);
        let (bytes, _) = w.finish_file().expect("vec");
        assert_eq!(decode_trace(&bytes).expect("decodes"), trace);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode_trace(&sample_trace());
        bytes[0] = b'X';
        assert!(matches!(decode_trace(&bytes), Err(TraceError::BadMagic)));
    }

    #[test]
    fn bad_version_is_typed() {
        let mut bytes = encode_trace(&sample_trace());
        bytes[4] = TRACE_VERSION + 1;
        assert!(matches!(decode_trace(&bytes), Err(TraceError::BadVersion(_))));
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = encode_trace(&sample_trace());
        // Every strict prefix must fail with Truncated or Corrupt — never
        // succeed, never panic. (Check a spread of prefixes; checking all
        // ~4k is fine too but slower under the sanitizer-ish profiles.)
        for len in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            match decode_trace(&bytes[..len]) {
                Err(TraceError::Truncated { .. }) | Err(TraceError::Corrupt { .. }) => {}
                other => panic!("prefix {len}: expected typed failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_shape_is_typed() {
        // Small trace: one frame, 1-byte count/len varints, so the payload
        // starts at byte 7 with the 0xFF dictionary escape.
        let trace = &sample_trace()[..4];
        let mut bytes = encode_trace(trace);
        assert_eq!(bytes[5], 4, "frame count");
        assert_eq!(bytes[7], SHAPE_ESCAPE);
        bytes[11] = 0xEE; // byte 3 of the packed shape must be zero
        assert!(matches!(decode_trace(&bytes), Err(TraceError::Corrupt { .. })));
    }

    #[test]
    fn trailer_count_mismatch_is_typed() {
        let trace = sample_trace();
        let mut bytes = encode_trace(&trace[..300]);
        // The trailer total (300) is the varint right after the final
        // count-0 byte; find it from the end: ..., 0x00, varint(300)=AC 02,
        // "KTRE". Flip a bit in the total.
        let n = bytes.len();
        assert_eq!(&bytes[n - 4..], b"KTRE");
        bytes[n - 6] ^= 0x01;
        assert!(matches!(
            decode_trace(&bytes),
            Err(TraceError::Corrupt { what: "trailer µop count mismatch", .. })
        ));
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn shape_pack_unpack_round_trips() {
        for u in sample_trace().iter().take(50) {
            let s = Shape::pack(u);
            let f = s.unpack(0).expect("valid shape");
            assert_eq!(f.kind, u.kind);
            assert_eq!(f.category, u.category);
            assert_eq!(f.region, u.region);
            assert_eq!(f.provenance, u.provenance);
            assert_eq!(f.taken, u.taken);
            assert_eq!(f.has_mem, u.mem.is_some());
        }
    }
}

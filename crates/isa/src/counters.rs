//! Dynamic-instruction accounting.
//!
//! [`CounterSink`] tallies retired µops by [`Category`] and [`Region`], and
//! separately counts the check/untag µops whose subject value was obtained
//! from an object load ([`Provenance`]). These tallies are exactly the data
//! required to regenerate Figures 1 and 2 of the paper.

use crate::trace::TraceSink;
use crate::uop::{Category, Provenance, Region, Uop};

/// Instruction-mix counters for one measured run.
#[derive(Debug, Clone, Default)]
pub struct CounterSink {
    /// `counts[region][category]` = retired µops.
    counts: [[u64; 5]; 3],
    /// Check/untag µops guarding a value obtained from a named-property
    /// load, per region.
    after_property_load: [u64; 3],
    /// Check/untag µops guarding a value obtained from an elements-array
    /// load, per region.
    after_elements_load: [u64; 3],
}

impl CounterSink {
    /// Create zeroed counters.
    pub fn new() -> CounterSink {
        CounterSink::default()
    }

    /// Reset all counters to zero (used at the steady-state boundary).
    pub fn reset(&mut self) {
        *self = CounterSink::default();
    }

    /// Total retired µops across all regions and categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Total retired µops in one region.
    pub fn total_in(&self, region: Region) -> u64 {
        self.counts[region.index()].iter().sum()
    }

    /// Total retired µops inside optimized code.
    pub fn total_optimized(&self) -> u64 {
        self.total_in(Region::Optimized)
    }

    /// Retired µops of `category` summed over all regions.
    pub fn by_category(&self, category: Category) -> u64 {
        self.counts.iter().map(|r| r[category.index()]).sum()
    }

    /// Retired µops of `category` within `region`.
    pub fn count(&self, region: Region, category: Category) -> u64 {
        self.counts[region.index()][category.index()]
    }

    /// Fraction (0..=1) of all retired µops that have `category`.
    pub fn fraction(&self, category: Category) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.by_category(category) as f64 / t as f64
        }
    }

    /// Check/untag µops that guard values obtained from object loads
    /// (property + elements), across all regions. The Figure 2
    /// "whole application" numerator.
    pub fn after_object_load(&self) -> u64 {
        self.after_property_load.iter().sum::<u64>()
            + self.after_elements_load.iter().sum::<u64>()
    }

    /// Same, restricted to optimized code. The Figure 2 "optimized code"
    /// numerator.
    pub fn after_object_load_optimized(&self) -> u64 {
        let i = Region::Optimized.index();
        self.after_property_load[i] + self.after_elements_load[i]
    }

    /// Figure 2, "whole application" series: percentage of all dynamic
    /// instructions that are checks/untag-checks after object loads.
    pub fn fig2_whole_pct(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            100.0 * self.after_object_load() as f64 / t as f64
        }
    }

    /// Figure 2, "optimized code" series: same percentage over optimized
    /// code only.
    pub fn fig2_optimized_pct(&self) -> f64 {
        let t = self.total_optimized();
        if t == 0 {
            0.0
        } else {
            100.0 * self.after_object_load_optimized() as f64 / t as f64
        }
    }

    /// Figure 1 row: percentage of all dynamic instructions per category,
    /// in [`Category::ALL`] order. Sums to 100 (up to rounding) when any
    /// instructions were retired.
    pub fn fig1_row(&self) -> [f64; 5] {
        let t = self.total();
        let mut row = [0.0; 5];
        if t == 0 {
            return row;
        }
        for c in Category::ALL {
            row[c.index()] = 100.0 * self.by_category(c) as f64 / t as f64;
        }
        row
    }
}

impl CounterSink {
    /// The per-µop accounting step, shared by [`TraceSink::emit`] and
    /// [`TraceSink::emit_batch`]. Kept `#[inline(always)]` so the batch
    /// loop compiles to straight-line array arithmetic with no calls.
    #[inline(always)]
    fn tally(&mut self, uop: &Uop) {
        self.counts[uop.region.index()][uop.category.index()] += 1;
        match uop.provenance {
            Provenance::None => {}
            Provenance::PropertyLoad => {
                self.after_property_load[uop.region.index()] += 1;
            }
            Provenance::ElementsLoad => {
                self.after_elements_load[uop.region.index()] += 1;
            }
        }
    }
}

impl TraceSink for CounterSink {
    #[inline]
    fn emit(&mut self, uop: &Uop) {
        self.tally(uop);
    }

    /// One virtual call per batch; the tally loop is monomorphized here and
    /// the bounds checks on the fixed-size count arrays vanish after
    /// inlining.
    #[inline]
    fn emit_batch(&mut self, uops: &[Uop]) {
        for u in uops {
            self.tally(u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::{Provenance, Uop};

    fn check_after_prop(region: Region) -> Uop {
        Uop::alu(0, Category::Check, region).with_provenance(Provenance::PropertyLoad)
    }

    #[test]
    fn totals_and_fractions() {
        let mut c = CounterSink::new();
        for _ in 0..3 {
            c.emit(&Uop::alu(0, Category::RestOfCode, Region::Baseline));
        }
        c.emit(&Uop::alu(0, Category::Check, Region::Optimized));
        assert_eq!(c.total(), 4);
        assert_eq!(c.by_category(Category::Check), 1);
        assert!((c.fraction(Category::Check) - 0.25).abs() < 1e-12);
        assert_eq!(c.total_optimized(), 1);
    }

    #[test]
    fn fig2_percentages() {
        let mut c = CounterSink::new();
        // 2 optimized µops, one of which is a check-after-property-load.
        c.emit(&check_after_prop(Region::Optimized));
        c.emit(&Uop::alu(0, Category::OtherOptimized, Region::Optimized));
        // 2 baseline µops, no relevant checks.
        c.emit(&Uop::alu(0, Category::RestOfCode, Region::Baseline));
        c.emit(&Uop::alu(0, Category::RestOfCode, Region::Baseline));
        assert!((c.fig2_whole_pct() - 25.0).abs() < 1e-9);
        assert!((c.fig2_optimized_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_row_sums_to_100() {
        let mut c = CounterSink::new();
        c.emit(&Uop::alu(0, Category::Check, Region::Optimized));
        c.emit(&Uop::alu(0, Category::TagUntag, Region::Optimized));
        c.emit(&Uop::alu(0, Category::MathAssume, Region::Optimized));
        c.emit(&Uop::alu(0, Category::OtherOptimized, Region::Optimized));
        c.emit(&Uop::alu(0, Category::RestOfCode, Region::Runtime));
        let row = c.fig1_row();
        let sum: f64 = row.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!(row.iter().all(|&x| (x - 20.0).abs() < 1e-9));
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = CounterSink::new();
        c.emit(&check_after_prop(Region::Optimized));
        c.reset();
        assert_eq!(c.total(), 0);
        assert_eq!(c.after_object_load(), 0);
    }

    #[test]
    fn empty_counters_give_zero_percentages() {
        let c = CounterSink::new();
        assert_eq!(c.fig2_whole_pct(), 0.0);
        assert_eq!(c.fig2_optimized_pct(), 0.0);
        assert_eq!(c.fig1_row(), [0.0; 5]);
    }

    #[test]
    fn elements_provenance_counted() {
        let mut c = CounterSink::new();
        c.emit(
            &Uop::alu(0, Category::Check, Region::Optimized)
                .with_provenance(Provenance::ElementsLoad),
        );
        assert_eq!(c.after_object_load(), 1);
        assert_eq!(c.after_object_load_optimized(), 1);
    }
}

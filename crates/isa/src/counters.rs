//! Dynamic-instruction accounting.
//!
//! [`CounterSink`] tallies retired µops by [`Category`] and [`Region`], and
//! separately counts the check/untag µops whose subject value was obtained
//! from an object load ([`Provenance`]). These tallies are exactly the data
//! required to regenerate Figures 1 and 2 of the paper.

use crate::trace::TraceSink;
use crate::uop::{Category, Provenance, Region, Uop};

/// Instruction-mix counters for one measured run.
#[derive(Debug, Clone, Default)]
pub struct CounterSink {
    /// `counts[region][category]` = retired µops.
    counts: [[u64; 5]; 3],
    /// Check/untag µops guarding a value obtained from a named-property
    /// load, per region.
    after_property_load: [u64; 3],
    /// Check/untag µops guarding a value obtained from an elements-array
    /// load, per region.
    after_elements_load: [u64; 3],
}

impl CounterSink {
    /// Create zeroed counters.
    pub fn new() -> CounterSink {
        CounterSink::default()
    }

    /// Reset all counters to zero (used at the steady-state boundary).
    pub fn reset(&mut self) {
        *self = CounterSink::default();
    }

    /// Total retired µops across all regions and categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Total retired µops in one region.
    pub fn total_in(&self, region: Region) -> u64 {
        self.counts[region.index()].iter().sum()
    }

    /// Total retired µops inside optimized code.
    pub fn total_optimized(&self) -> u64 {
        self.total_in(Region::Optimized)
    }

    /// Retired µops of `category` summed over all regions.
    pub fn by_category(&self, category: Category) -> u64 {
        self.counts.iter().map(|r| r[category.index()]).sum()
    }

    /// Retired µops of `category` within `region`.
    pub fn count(&self, region: Region, category: Category) -> u64 {
        self.counts[region.index()][category.index()]
    }

    /// Fraction (0..=1) of all retired µops that have `category`.
    pub fn fraction(&self, category: Category) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.by_category(category) as f64 / t as f64
        }
    }

    /// Check/untag µops that guard values obtained from object loads
    /// (property + elements), across all regions. The Figure 2
    /// "whole application" numerator.
    pub fn after_object_load(&self) -> u64 {
        self.after_property_load.iter().sum::<u64>()
            + self.after_elements_load.iter().sum::<u64>()
    }

    /// Same, restricted to optimized code. The Figure 2 "optimized code"
    /// numerator.
    pub fn after_object_load_optimized(&self) -> u64 {
        let i = Region::Optimized.index();
        self.after_property_load[i] + self.after_elements_load[i]
    }

    /// Figure 2, "whole application" series: percentage of all dynamic
    /// instructions that are checks/untag-checks after object loads.
    pub fn fig2_whole_pct(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            100.0 * self.after_object_load() as f64 / t as f64
        }
    }

    /// Figure 2, "optimized code" series: same percentage over optimized
    /// code only.
    pub fn fig2_optimized_pct(&self) -> f64 {
        let t = self.total_optimized();
        if t == 0 {
            0.0
        } else {
            100.0 * self.after_object_load_optimized() as f64 / t as f64
        }
    }

    /// Serialize all counters into a flat word array (row-major `counts`,
    /// then the two provenance arrays). The trace cache stores this sidecar
    /// next to a recorded trace so a warm run can skip the engine entirely.
    pub fn snapshot(&self) -> [u64; 21] {
        let mut s = [0u64; 21];
        for (r, row) in self.counts.iter().enumerate() {
            s[r * 5..r * 5 + 5].copy_from_slice(row);
        }
        s[15..18].copy_from_slice(&self.after_property_load);
        s[18..21].copy_from_slice(&self.after_elements_load);
        s
    }

    /// Rebuild counters from a [`CounterSink::snapshot`] word array.
    pub fn from_snapshot(s: &[u64; 21]) -> CounterSink {
        let mut c = CounterSink::default();
        for (r, row) in c.counts.iter_mut().enumerate() {
            row.copy_from_slice(&s[r * 5..r * 5 + 5]);
        }
        c.after_property_load.copy_from_slice(&s[15..18]);
        c.after_elements_load.copy_from_slice(&s[18..21]);
        c
    }

    /// Figure 1 row: percentage of all dynamic instructions per category,
    /// in [`Category::ALL`] order. Sums to 100 (up to rounding) when any
    /// instructions were retired.
    pub fn fig1_row(&self) -> [f64; 5] {
        let t = self.total();
        let mut row = [0.0; 5];
        if t == 0 {
            return row;
        }
        for c in Category::ALL {
            row[c.index()] = 100.0 * self.by_category(c) as f64 / t as f64;
        }
        row
    }
}

impl CounterSink {
    /// The per-µop accounting step, shared by [`TraceSink::emit`] and
    /// [`TraceSink::emit_batch`]. Kept `#[inline(always)]` so the batch
    /// loop compiles to straight-line array arithmetic with no calls.
    #[inline(always)]
    fn tally(&mut self, uop: &Uop) {
        self.counts[uop.region.index()][uop.category.index()] += 1;
        match uop.provenance {
            Provenance::None => {}
            Provenance::PropertyLoad => {
                self.after_property_load[uop.region.index()] += 1;
            }
            Provenance::ElementsLoad => {
                self.after_elements_load[uop.region.index()] += 1;
            }
        }
    }
}

impl TraceSink for CounterSink {
    #[inline]
    fn emit(&mut self, uop: &Uop) {
        self.tally(uop);
    }

    /// One virtual call per batch; the tally loop is monomorphized here and
    /// the bounds checks on the fixed-size count arrays vanish after
    /// inlining.
    #[inline]
    fn emit_batch(&mut self, uops: &[Uop]) {
        for u in uops {
            self.tally(u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::{Provenance, Uop};

    fn check_after_prop(region: Region) -> Uop {
        Uop::alu(0, Category::Check, region).with_provenance(Provenance::PropertyLoad)
    }

    #[test]
    fn totals_and_fractions() {
        let mut c = CounterSink::new();
        for _ in 0..3 {
            c.emit(&Uop::alu(0, Category::RestOfCode, Region::Baseline));
        }
        c.emit(&Uop::alu(0, Category::Check, Region::Optimized));
        assert_eq!(c.total(), 4);
        assert_eq!(c.by_category(Category::Check), 1);
        assert!((c.fraction(Category::Check) - 0.25).abs() < 1e-12);
        assert_eq!(c.total_optimized(), 1);
    }

    #[test]
    fn fig2_percentages() {
        let mut c = CounterSink::new();
        // 2 optimized µops, one of which is a check-after-property-load.
        c.emit(&check_after_prop(Region::Optimized));
        c.emit(&Uop::alu(0, Category::OtherOptimized, Region::Optimized));
        // 2 baseline µops, no relevant checks.
        c.emit(&Uop::alu(0, Category::RestOfCode, Region::Baseline));
        c.emit(&Uop::alu(0, Category::RestOfCode, Region::Baseline));
        assert!((c.fig2_whole_pct() - 25.0).abs() < 1e-9);
        assert!((c.fig2_optimized_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_row_sums_to_100() {
        let mut c = CounterSink::new();
        c.emit(&Uop::alu(0, Category::Check, Region::Optimized));
        c.emit(&Uop::alu(0, Category::TagUntag, Region::Optimized));
        c.emit(&Uop::alu(0, Category::MathAssume, Region::Optimized));
        c.emit(&Uop::alu(0, Category::OtherOptimized, Region::Optimized));
        c.emit(&Uop::alu(0, Category::RestOfCode, Region::Runtime));
        let row = c.fig1_row();
        let sum: f64 = row.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!(row.iter().all(|&x| (x - 20.0).abs() < 1e-9));
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = CounterSink::new();
        c.emit(&check_after_prop(Region::Optimized));
        c.reset();
        assert_eq!(c.total(), 0);
        assert_eq!(c.after_object_load(), 0);
    }

    #[test]
    fn empty_counters_give_zero_percentages() {
        let c = CounterSink::new();
        assert_eq!(c.fig2_whole_pct(), 0.0);
        assert_eq!(c.fig2_optimized_pct(), 0.0);
        assert_eq!(c.fig1_row(), [0.0; 5]);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut c = CounterSink::new();
        c.emit(&check_after_prop(Region::Optimized));
        c.emit(&Uop::alu(0, Category::TagUntag, Region::Baseline));
        c.emit(
            &Uop::alu(0, Category::Check, Region::Runtime)
                .with_provenance(Provenance::ElementsLoad),
        );
        let back = CounterSink::from_snapshot(&c.snapshot());
        assert_eq!(back.total(), c.total());
        for r in [Region::Optimized, Region::Baseline, Region::Runtime] {
            for cat in Category::ALL {
                assert_eq!(back.count(r, cat), c.count(r, cat));
            }
        }
        assert_eq!(back.after_object_load(), c.after_object_load());
        assert_eq!(back.after_object_load_optimized(), c.after_object_load_optimized());
    }

    #[test]
    fn elements_provenance_counted() {
        let mut c = CounterSink::new();
        c.emit(
            &Uop::alu(0, Category::Check, Region::Optimized)
                .with_provenance(Provenance::ElementsLoad),
        );
        assert_eq!(c.after_object_load(), 1);
        assert_eq!(c.after_object_load_optimized(), 1);
    }
}

//! Simulated virtual address-space layout.
//!
//! All components agree on these region bases so that data addresses emitted
//! by the runtime and code addresses emitted by the tiers land in disjoint,
//! recognizable regions. The regions are far apart so that the TLB and cache
//! models see realistic conflict behaviour.

/// Base of the simulated JavaScript heap (objects, elements arrays,
/// heap numbers, strings).
pub const HEAP_BASE: u64 = 0x0000_1000_0000;

/// Base of baseline-tier (Full Codegen analog) generated code.
pub const BASELINE_CODE_BASE: u64 = 0x0000_4000_0000;

/// Base of optimized-tier (Crankshaft analog) generated code.
pub const OPT_CODE_BASE: u64 = 0x0000_5000_0000;

/// Base of runtime/stub code (IC miss handlers, allocation slow paths).
pub const RUNTIME_CODE_BASE: u64 = 0x0000_6000_0000;

/// Base of the in-memory Class List (§4.2.1.1): a 64 KB region holding
/// 2^16 entries, indexed by `(ClassID << 8) | Line`.
pub const CLASS_LIST_BASE: u64 = 0x0000_7000_0000;

/// Base of the VM stack (locals / operand values spilled by frames).
pub const STACK_BASE: u64 = 0x0000_7f00_0000;

/// Byte size of one cache line; objects are aligned to this (§4.2.1.3:
/// "the proposed mechanism requires that objects are created aligned to
/// cache lines").
pub const CACHE_LINE: u64 = 64;

/// Each Class List entry occupies 16 bytes in the simulated 64 KB region
/// would be 2^16 entries * 16 B = 1 MiB; the paper states the region is
/// 64 KB because entries are packed. We model a packed 16-byte entry and a
/// 1 MiB region for address generation; only the Class Cache timing treats
/// it specially.
pub const CLASS_LIST_ENTRY_BYTES: u64 = 16;

/// Simulated address of the Class List entry for `(class_id, line)`.
pub fn class_list_entry_addr(class_id: u8, line: u8) -> u64 {
    CLASS_LIST_BASE + (((class_id as u64) << 8) | line as u64) * CLASS_LIST_ENTRY_BYTES
}

/// Align an address up to the next cache-line boundary.
pub fn align_line(addr: u64) -> u64 {
    (addr + CACHE_LINE - 1) & !(CACHE_LINE - 1)
}

/// The relative property position within a cache line for a byte address
/// (bits 3–5 of the address, §4.2.1.3).
pub fn property_position(addr: u64) -> u8 {
    ((addr >> 3) & 0x7) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        // The operands are consts, so make the check compile-time: the
        // test merely forces the const block to be evaluated.
        const {
            assert!(HEAP_BASE < BASELINE_CODE_BASE);
            assert!(BASELINE_CODE_BASE < OPT_CODE_BASE);
            assert!(OPT_CODE_BASE < RUNTIME_CODE_BASE);
            assert!(RUNTIME_CODE_BASE < CLASS_LIST_BASE);
            assert!(CLASS_LIST_BASE < STACK_BASE);
        }
    }

    #[test]
    fn align_line_works() {
        assert_eq!(align_line(0), 0);
        assert_eq!(align_line(1), 64);
        assert_eq!(align_line(64), 64);
        assert_eq!(align_line(65), 128);
    }

    #[test]
    fn property_position_extracts_bits_3_to_5() {
        assert_eq!(property_position(0x00), 0);
        assert_eq!(property_position(0x08), 1);
        assert_eq!(property_position(0x10), 2);
        assert_eq!(property_position(0x38), 7);
        assert_eq!(property_position(0x40), 0); // next line
    }

    #[test]
    fn class_list_addressing_is_injective_per_entry() {
        let a = class_list_entry_addr(1, 0);
        let b = class_list_entry_addr(1, 1);
        let c = class_list_entry_addr(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(b - a, CLASS_LIST_ENTRY_BYTES);
    }
}

//! The micro-operation (dynamic instruction) model.
//!
//! Every instruction retired by the simulated core is described by a [`Uop`].
//! The execution tiers attach to each µop:
//!
//! * a [`UopKind`] controlling its functional-unit latency in the timing
//!   model (and identifying the paper's four new instructions),
//! * a [`Category`] reproducing the Figure 1 dynamic-instruction breakdown,
//! * a [`Provenance`] marking checks that guard a value *obtained from an
//!   object load* (needed for Figure 2),
//! * a [`Region`] distinguishing optimized code from the rest of the
//!   application (needed for the "optimized code" vs "whole application"
//!   series of Figures 2, 8 and 9), and
//! * up to two source tokens and one destination token, a lightweight
//!   dataflow encoding used by the out-of-order window model.

/// A dataflow token: an abstract register name used for dependence tracking
/// in the timing model. `Tok::NONE` means "no operand".
///
/// Tokens are allocated by the trace producers; they only need to be unique
/// while a value is live, so producers use small rotating namespaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tok(pub u32);

impl Tok {
    /// The absent operand.
    pub const NONE: Tok = Tok(0);

    /// Returns true if this token denotes a real operand.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl Default for Tok {
    fn default() -> Self {
        Tok::NONE
    }
}

/// Functional class of a µop. Determines execution latency and which
/// structures it touches in the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Integer ALU operation (add, sub, logic, compare, shift, lea, test).
    Alu,
    /// Integer multiply.
    Mul,
    /// Integer divide.
    Div,
    /// Floating-point add/sub/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / sqrt.
    FpDiv,
    /// Memory load (goes through DTLB + DL1).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump, call or return.
    Jump,
    /// Register-to-register move / immediate load.
    Move,
    /// `movClassID` — loads the ClassID of an object into the special
    /// `regObjectClassId` register (§4.2.1.2). Reads the object header word
    /// unless the operand is a SMI.
    MovClassId,
    /// `movClassIDArray` — same, into one of `regArrayObjectClassId0-3`.
    MovClassIdArray,
    /// `movStoreClassCache` — a store to an object property that, in
    /// parallel with the DL1 write, sends a profiling/verification request
    /// to the Class Cache.
    MovStoreClassCache,
    /// `movStoreClassCacheArray` — the elements-array variant.
    MovStoreClassCacheArray,
}

impl UopKind {
    /// Number of kinds (the length of [`UopKind::ALL`]).
    pub const COUNT: usize = 15;

    /// All kinds in discriminant order, for building kind-indexed lookup
    /// tables (latency, energy) that replace per-µop `match`es in hot
    /// loops.
    pub const ALL: [UopKind; UopKind::COUNT] = [
        UopKind::Alu,
        UopKind::Mul,
        UopKind::Div,
        UopKind::FpAdd,
        UopKind::FpMul,
        UopKind::FpDiv,
        UopKind::Load,
        UopKind::Store,
        UopKind::Branch,
        UopKind::Jump,
        UopKind::Move,
        UopKind::MovClassId,
        UopKind::MovClassIdArray,
        UopKind::MovStoreClassCache,
        UopKind::MovStoreClassCacheArray,
    ];

    /// Stable dense index (the discriminant) for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this µop performs a data-memory access by itself
    /// (loads, stores, and the Class Cache store instructions).
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            UopKind::Load
                | UopKind::Store
                | UopKind::MovStoreClassCache
                | UopKind::MovStoreClassCacheArray
        )
    }

    /// Whether this µop is one of the paper's four new machine instructions.
    #[inline]
    pub fn is_class_cache_isa(self) -> bool {
        matches!(
            self,
            UopKind::MovClassId
                | UopKind::MovClassIdArray
                | UopKind::MovStoreClassCache
                | UopKind::MovStoreClassCacheArray
        )
    }
}

/// Dynamic-instruction category, reproducing the stacked breakdown of
/// Figure 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Checking operations: Check Map, Check SMI, Check Non-SMI (§3.3).
    Check,
    /// Boxing/unboxing of number values, including the checking operations
    /// folded into untag sequences (§3.3 "Tags/Untags").
    TagUntag,
    /// Runtime value verifications on math operations: SMI overflow,
    /// division by zero, minus-zero (§3.3 "math assumptions").
    MathAssume,
    /// All other instructions executed inside optimized (Crankshaft-tier)
    /// code.
    OtherOptimized,
    /// Everything else: baseline (Full Codegen-tier) code, IC stubs,
    /// runtime helpers.
    RestOfCode,
}

impl Category {
    /// All categories, in the order the paper's Figure 1 stacks them.
    pub const ALL: [Category; 5] = [
        Category::Check,
        Category::TagUntag,
        Category::MathAssume,
        Category::OtherOptimized,
        Category::RestOfCode,
    ];

    /// Stable index for array-based accounting.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Category::Check => 0,
            Category::TagUntag => 1,
            Category::MathAssume => 2,
            Category::OtherOptimized => 3,
            Category::RestOfCode => 4,
        }
    }

    /// Human-readable label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Category::Check => "Checks",
            Category::TagUntag => "Tags/Untags",
            Category::MathAssume => "Math Assumptions",
            Category::OtherOptimized => "Other Optimized Code",
            Category::RestOfCode => "Rest of Code",
        }
    }
}

/// Where the guarded value of a check µop came from. Figure 2 counts the
/// check/untag overhead incurred *after object load accesses*, i.e. checks
/// whose subject was loaded from a named property or from an elements array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Provenance {
    /// Not a check, or the checked value did not come from an object load.
    #[default]
    None,
    /// The checked value was loaded from a named object property.
    PropertyLoad,
    /// The checked value was loaded from an elements array.
    ElementsLoad,
}

impl Provenance {
    /// True for checks that Figure 2 counts.
    #[inline]
    pub fn from_object_load(self) -> bool {
        !matches!(self, Provenance::None)
    }
}

/// Which execution tier retired the µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Specialized code produced by the optimizing tier.
    Optimized,
    /// Generic code produced by the baseline tier (including IC stubs).
    Baseline,
    /// Runtime housekeeping executed on behalf of either tier
    /// (allocation slow paths, IC misses, deoptimization).
    Runtime,
}

impl Region {
    /// Stable index for array-based accounting.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Region::Optimized => 0,
            Region::Baseline => 1,
            Region::Runtime => 2,
        }
    }
}

/// A data-memory reference performed by a µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Simulated virtual byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub size: u8,
    /// True for stores.
    pub is_store: bool,
}

impl MemRef {
    /// An 8-byte load at `addr`.
    #[inline]
    pub fn load(addr: u64) -> MemRef {
        MemRef { addr, size: 8, is_store: false }
    }

    /// An 8-byte store at `addr`.
    #[inline]
    pub fn store(addr: u64) -> MemRef {
        MemRef { addr, size: 8, is_store: true }
    }
}

/// One retired dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uop {
    /// Functional class.
    pub kind: UopKind,
    /// Figure 1 category.
    pub category: Category,
    /// Simulated instruction address (drives IL1/ITLB behaviour).
    pub pc: u64,
    /// Data-memory access, if any.
    pub mem: Option<MemRef>,
    /// Source dataflow tokens (0, 1 or 2 real operands).
    pub srcs: [Tok; 2],
    /// Destination dataflow token.
    pub dst: Tok,
    /// Check provenance for Figure 2 accounting.
    pub provenance: Provenance,
    /// Producing tier.
    pub region: Region,
    /// For branches: whether the branch was taken (used by the predictor
    /// model). Meaningless for other kinds.
    pub taken: bool,
}

impl Uop {
    /// A plain µop with no operands and no memory access.
    #[inline]
    pub fn new(kind: UopKind, pc: u64, category: Category, region: Region) -> Uop {
        Uop {
            kind,
            category,
            pc,
            mem: None,
            srcs: [Tok::NONE; 2],
            dst: Tok::NONE,
            provenance: Provenance::None,
            region,
            taken: false,
        }
    }

    /// Convenience constructor for an ALU µop.
    #[inline]
    pub fn alu(pc: u64, category: Category, region: Region) -> Uop {
        Uop::new(UopKind::Alu, pc, category, region)
    }

    /// Convenience constructor for a load µop.
    #[inline]
    pub fn load(pc: u64, addr: u64, category: Category, region: Region) -> Uop {
        let mut u = Uop::new(UopKind::Load, pc, category, region);
        u.mem = Some(MemRef::load(addr));
        u
    }

    /// Convenience constructor for a store µop.
    #[inline]
    pub fn store(pc: u64, addr: u64, category: Category, region: Region) -> Uop {
        let mut u = Uop::new(UopKind::Store, pc, category, region);
        u.mem = Some(MemRef::store(addr));
        u
    }

    /// Convenience constructor for a branch µop.
    #[inline]
    pub fn branch(pc: u64, taken: bool, category: Category, region: Region) -> Uop {
        let mut u = Uop::new(UopKind::Branch, pc, category, region);
        u.taken = taken;
        u
    }

    /// Builder-style: set source tokens.
    #[inline]
    pub fn with_srcs(mut self, a: Tok, b: Tok) -> Uop {
        self.srcs = [a, b];
        self
    }

    /// Builder-style: set destination token.
    #[inline]
    pub fn with_dst(mut self, dst: Tok) -> Uop {
        self.dst = dst;
        self
    }

    /// Builder-style: set check provenance.
    #[inline]
    pub fn with_provenance(mut self, p: Provenance) -> Uop {
        self.provenance = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_indices_are_dense_and_distinct() {
        let mut seen = [false; 5];
        for c in Category::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn kind_indices_are_dense_and_match_all_order() {
        let mut seen = [false; UopKind::COUNT];
        for (pos, k) in UopKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), pos, "ALL must list kinds in index order");
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn memory_kinds() {
        assert!(UopKind::Load.is_memory());
        assert!(UopKind::Store.is_memory());
        assert!(UopKind::MovStoreClassCache.is_memory());
        assert!(UopKind::MovStoreClassCacheArray.is_memory());
        assert!(!UopKind::Alu.is_memory());
        assert!(!UopKind::MovClassId.is_memory());
    }

    #[test]
    fn class_cache_isa_flags() {
        assert!(UopKind::MovClassId.is_class_cache_isa());
        assert!(UopKind::MovClassIdArray.is_class_cache_isa());
        assert!(UopKind::MovStoreClassCache.is_class_cache_isa());
        assert!(UopKind::MovStoreClassCacheArray.is_class_cache_isa());
        assert!(!UopKind::Load.is_class_cache_isa());
    }

    #[test]
    fn uop_builders() {
        let u = Uop::load(0x40, 0x1000, Category::Check, Region::Optimized)
            .with_srcs(Tok(3), Tok::NONE)
            .with_dst(Tok(4))
            .with_provenance(Provenance::PropertyLoad);
        assert_eq!(u.mem.unwrap().addr, 0x1000);
        assert!(!u.mem.unwrap().is_store);
        assert!(u.provenance.from_object_load());
        assert_eq!(u.srcs[0], Tok(3));
        assert!(u.dst.is_some());
    }

    #[test]
    fn tok_none_is_not_some() {
        assert!(!Tok::NONE.is_some());
        assert!(Tok(1).is_some());
        assert_eq!(Tok::default(), Tok::NONE);
    }

    #[test]
    fn memref_constructors() {
        let l = MemRef::load(64);
        let s = MemRef::store(64);
        assert!(!l.is_store);
        assert!(s.is_store);
        assert_eq!(l.size, 8);
    }
}

//! Std-only LZ-style block compression for encoded µop traces.
//!
//! The trace store (crates/bench) persists [`crate::codec`]-encoded trace
//! bodies as content-addressed objects; this module supplies the
//! byte-oriented compression those objects use. The format is the classic
//! LZ77 token scheme (literals + back-references into the already-decoded
//! output, 64 KiB window):
//!
//! ```text
//! sequence := token | [lit-len ext bytes] | literals
//!           | offset:u16le | [match-len ext bytes]
//! token    := (literal_len:4 << 4) | match_len_minus_4:4
//! ```
//!
//! A nibble value of 15 is continued by extension bytes, each adding its
//! value, terminated by the first byte < 255 (so lengths are unbounded).
//! The final sequence of a block is literals-only: after its literals the
//! input simply ends, with no offset field. Matches are at least
//! [`MIN_MATCH`] bytes and may self-overlap (offset < length encodes the
//! usual run-extension idiom).
//!
//! Design constraints, in priority order:
//!
//! 1. **[`decompress`] never panics** on any input — every read is
//!    bounds-checked and failures are typed [`LzError`]s. Trace objects
//!    cross a network protocol; corrupt frames must degrade to a cache
//!    miss, not a crash.
//! 2. Exact round-trip: `decompress(&compress(x), x.len()) == x`.
//! 3. Throughput over ratio: a greedy single-pass hash-table matcher, no
//!    entropy stage. Encoded traces are already dense (~5 B/µop) but
//!    highly self-similar (loop bodies repeat), which is exactly what a
//!    long-window LZ exploits.

/// Minimum back-reference length (shorter matches are stored as literals).
pub const MIN_MATCH: usize = 4;

/// Maximum back-reference distance (`u16` offset field; 0 is invalid).
pub const MAX_OFFSET: usize = u16::MAX as usize;

const HASH_BITS: u32 = 15;

/// Typed decompression failure. Every variant reports the compressed-input
/// offset at which decoding stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LzError {
    /// The compressed stream ended inside a token, length, offset or
    /// literal run.
    Truncated {
        /// Compressed-input offset of the failure.
        offset: usize,
    },
    /// A back-reference pointed before the start of the output, or its
    /// offset field was zero.
    BadOffset {
        /// Compressed-input offset of the failure.
        offset: usize,
    },
    /// Decoding would exceed the caller's declared output size.
    TooLong {
        /// Compressed-input offset of the failure.
        offset: usize,
    },
    /// The stream decoded cleanly but produced fewer bytes than declared.
    ShortOutput {
        /// Bytes actually produced.
        produced: usize,
        /// Bytes the caller declared.
        expected: usize,
    },
}

impl std::fmt::Display for LzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            LzError::Truncated { offset } => {
                write!(f, "compressed stream truncated at byte {offset}")
            }
            LzError::BadOffset { offset } => {
                write!(f, "back-reference out of range at byte {offset}")
            }
            LzError::TooLong { offset } => {
                write!(f, "output exceeds declared size at byte {offset}")
            }
            LzError::ShortOutput { produced, expected } => {
                write!(f, "decoded {produced} bytes, declared {expected}")
            }
        }
    }
}

impl std::error::Error for LzError {}

#[inline]
fn hash4(word: u32) -> usize {
    // Fibonacci hashing on the 4-byte window, top HASH_BITS bits.
    (word.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn read4(src: &[u8], pos: usize) -> u32 {
    // Caller guarantees pos + 4 <= src.len().
    u32::from_le_bytes([src[pos], src[pos + 1], src[pos + 2], src[pos + 3]])
}

fn put_len(out: &mut Vec<u8>, mut extra: usize) {
    // Emit the 255-continuation extension bytes for a nibble that held 15.
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn put_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let len = m.map_or(MIN_MATCH, |(_, len)| len);
    let lit_nib = literals.len().min(15);
    let match_nib = (len - MIN_MATCH).min(15);
    out.push(((lit_nib as u8) << 4) | match_nib as u8);
    if lit_nib == 15 {
        put_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((off, _)) = m {
        debug_assert!((1..=MAX_OFFSET).contains(&off));
        out.extend_from_slice(&(off as u16).to_le_bytes());
        if match_nib == 15 {
            put_len(out, len - MIN_MATCH - 15);
        }
    }
}

/// Compress `src`. The output always round-trips through [`decompress`]
/// with `expected = src.len()`; it is not guaranteed to be smaller than
/// the input (incompressible data gains a few header bytes — callers
/// store such payloads raw).
#[must_use]
pub fn compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    if src.len() < MIN_MATCH + 1 {
        put_sequence(&mut out, src, None);
        return out;
    }
    let mut table = vec![0u32; 1 << HASH_BITS]; // position + 1; 0 = empty
    let mut anchor = 0usize;
    let mut pos = 0usize;
    // Leave the last MIN_MATCH bytes for the trailing literal run so the
    // forward-extension loop below never reads past the end.
    let limit = src.len() - MIN_MATCH;
    while pos < limit {
        let word = read4(src, pos);
        let slot = &mut table[hash4(word)];
        let cand = *slot as usize;
        *slot = (pos + 1) as u32;
        if cand > 0 {
            let cand = cand - 1;
            if pos - cand <= MAX_OFFSET && read4(src, cand) == word {
                // Extend the match forward.
                let mut len = MIN_MATCH;
                while pos + len < src.len() && src[cand + len] == src[pos + len] {
                    len += 1;
                }
                put_sequence(&mut out, &src[anchor..pos], Some((pos - cand, len)));
                pos += len;
                anchor = pos;
                continue;
            }
        }
        pos += 1;
    }
    put_sequence(&mut out, &src[anchor..], None);
    out
}

struct LzCur<'a> {
    src: &'a [u8],
    pos: usize,
}

impl LzCur<'_> {
    #[inline]
    fn byte(&mut self) -> Result<u8, LzError> {
        let b = *self.src.get(self.pos).ok_or(LzError::Truncated { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    fn len_ext(&mut self, base: usize, cap: usize) -> Result<usize, LzError> {
        let mut len = base;
        loop {
            let b = self.byte()?;
            len += b as usize;
            // A hostile stream can chain 255-bytes forever; anything past
            // the declared output size is corrupt regardless.
            if len > cap {
                return Err(LzError::TooLong { offset: self.pos });
            }
            if b < 255 {
                return Ok(len);
            }
        }
    }
}

/// Decompress a [`compress`]ed stream into exactly `expected` bytes.
///
/// # Errors
///
/// Any structural defect — truncation, bad back-reference, or a decoded
/// size other than `expected` — is a typed [`LzError`]. This function
/// never panics and never allocates more than `expected` output bytes.
pub fn decompress(src: &[u8], expected: usize) -> Result<Vec<u8>, LzError> {
    let mut out: Vec<u8> = Vec::with_capacity(expected);
    let mut c = LzCur { src, pos: 0 };
    loop {
        let token = c.byte()?;
        let mut lit = (token >> 4) as usize;
        if lit == 15 {
            lit = c.len_ext(15, expected)?;
        }
        if out.len() + lit > expected {
            return Err(LzError::TooLong { offset: c.pos });
        }
        let end = c.pos.checked_add(lit).ok_or(LzError::Truncated { offset: c.pos })?;
        let run = c.src.get(c.pos..end).ok_or(LzError::Truncated { offset: c.pos })?;
        out.extend_from_slice(run);
        c.pos = end;
        if c.pos == c.src.len() {
            // Final literals-only sequence.
            if out.len() != expected {
                return Err(LzError::ShortOutput { produced: out.len(), expected });
            }
            return Ok(out);
        }
        let off_at = c.pos;
        let off = usize::from(u16::from_le_bytes([c.byte()?, c.byte()?]));
        if off == 0 || off > out.len() {
            return Err(LzError::BadOffset { offset: off_at });
        }
        let mut mlen = (token & 0x0f) as usize + MIN_MATCH;
        if mlen == 15 + MIN_MATCH {
            mlen = c.len_ext(mlen, expected)?;
        }
        if out.len() + mlen > expected {
            return Err(LzError::TooLong { offset: c.pos });
        }
        // Byte-at-a-time copy: overlapping back-references (offset < len)
        // intentionally re-read bytes this same copy produced.
        for from in out.len() - off..out.len() - off + mlen {
            let b = out[from];
            out.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let packed = compress(data);
        let back = decompress(&packed, data.len()).expect("decompresses");
        assert_eq!(back, data, "round trip of {} bytes", data.len());
    }

    #[test]
    fn round_trips_edge_cases() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
        round_trip(b"abcdabcd");
        round_trip(&[0u8; 4096]); // maximally overlapping match
        round_trip(&(0..=255u8).collect::<Vec<_>>()); // pure literals
    }

    #[test]
    fn round_trips_long_runs_and_large_lengths() {
        // > 15 literals (literal-length extension), > 19-byte matches
        // (match-length extension), > 255 extension continuation.
        let mut data = Vec::new();
        for i in 0..600u32 {
            data.extend_from_slice(&i.to_le_bytes());
        }
        data.extend_from_slice(&vec![7u8; 5000]);
        data.extend_from_slice(&data.clone());
        round_trip(&data);
    }

    #[test]
    fn round_trips_pseudorandom_and_trace_like_data() {
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        // Incompressible noise.
        let noise: Vec<u8> = (0..10_000).map(|_| rng() as u8).collect();
        round_trip(&noise);
        // Trace-like: repeated small records with drifting fields.
        let mut trace = Vec::new();
        for i in 0..5_000u64 {
            trace.push((i % 7) as u8);
            trace.extend_from_slice(&(0x4000 + (i % 13) * 8).to_le_bytes()[..3]);
            trace.push((rng() % 4) as u8);
        }
        let packed = compress(&trace);
        assert!(packed.len() < trace.len() / 2, "trace-like data should compress >2x");
        round_trip(&trace);
    }

    #[test]
    fn compresses_repetitive_data_well() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(200);
        let packed = compress(&data);
        assert!(packed.len() * 10 < data.len(), "ratio {}/{}", packed.len(), data.len());
    }

    #[test]
    fn matches_never_cross_the_window() {
        // Repeat a block at a distance beyond MAX_OFFSET: the second copy
        // cannot reference the first, but the stream must stay valid.
        let block: Vec<u8> = (0..97u8).cycle().take(8_192).collect();
        let mut data = block.clone();
        data.extend_from_slice(&vec![0u8; MAX_OFFSET + 1]);
        data.extend_from_slice(&block);
        round_trip(&data);
    }

    #[test]
    fn decompress_rejects_corruption_without_panicking() {
        let data = b"abcdefgh abcdefgh abcdefgh tail".repeat(20);
        let packed = compress(&data);
        // Every truncation point.
        for len in 0..packed.len() {
            let _ = decompress(&packed[..len], data.len());
        }
        // Every single-byte corruption, at every declared size nearby.
        for i in 0..packed.len() {
            let mut bad = packed.clone();
            bad[i] ^= 0xa5;
            for expected in [0, 1, data.len() - 1, data.len(), data.len() + 1] {
                if let Ok(out) = decompress(&bad, expected) {
                    assert_eq!(out.len(), expected);
                }
            }
        }
        // Pseudorandom garbage.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..200 {
            let n = (x % 300) as usize;
            let junk: Vec<u8> = (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect();
            let _ = decompress(&junk, 4096);
        }
    }

    #[test]
    fn declared_size_is_enforced() {
        let data = vec![3u8; 1000];
        let packed = compress(&data);
        assert!(decompress(&packed, 999).is_err(), "undershoot accepted");
        assert!(decompress(&packed, 1001).is_err(), "overshoot accepted");
        assert_eq!(decompress(&packed, 1000).expect("exact"), data);
    }
}

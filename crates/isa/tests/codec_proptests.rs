//! Property-based tests for the binary trace codec.
//!
//! Three properties:
//!
//! * **round trip** — arbitrary µop sequences encode→decode to an
//!   identical sequence (bitwise `Uop` equality, including token values,
//!   memory addresses and branch direction),
//! * **truncation** — every strict prefix of a valid trace fails with a
//!   typed [`TraceError`], never a panic and never a silent success,
//! * **corruption** — flipping arbitrary bytes either decodes cleanly
//!   (the flip may land in a value field, changing data but not
//!   structure) or fails with a typed error; it must never panic.

use checkelide_isa::codec::{decode_trace, encode_trace, TraceError, TraceReader};
use checkelide_isa::trace::VecSink;
use checkelide_isa::uop::{Category, MemRef, Provenance, Region, Tok, Uop, UopKind};
use proptest::prelude::*;

const KINDS: [UopKind; 15] = [
    UopKind::Alu,
    UopKind::Mul,
    UopKind::Div,
    UopKind::FpAdd,
    UopKind::FpMul,
    UopKind::FpDiv,
    UopKind::Load,
    UopKind::Store,
    UopKind::Branch,
    UopKind::Jump,
    UopKind::Move,
    UopKind::MovClassId,
    UopKind::MovClassIdArray,
    UopKind::MovStoreClassCache,
    UopKind::MovStoreClassCacheArray,
];
const CATEGORIES: [Category; 5] = Category::ALL;
const REGIONS: [Region; 3] = [Region::Optimized, Region::Baseline, Region::Runtime];
const PROVS: [Provenance; 3] =
    [Provenance::None, Provenance::PropertyLoad, Provenance::ElementsLoad];

/// One arbitrary µop. Tokens span the full `u32` range (including
/// `Tok::NONE`), PCs and addresses the full `u64` range — far wilder than
/// anything the engine emits, which is the point. The memory width is
/// capped at the format's 6-bit field.
fn arb_uop() -> BoxedStrategy<Uop> {
    (
        (0usize..KINDS.len(), 0usize..CATEGORIES.len(), 0usize..REGIONS.len()),
        (0usize..PROVS.len(), any::<bool>()),
        any::<u64>(),
        (any::<bool>(), any::<u64>(), 1u8..64, any::<bool>()),
        (any::<u32>(), any::<u32>(), any::<u32>()),
    )
        .prop_map(|((k, c, r), (p, taken), pc, (has_mem, addr, size, is_store), (s0, s1, d))| {
            Uop {
                kind: KINDS[k],
                category: CATEGORIES[c],
                pc,
                mem: has_mem.then_some(MemRef { addr, size, is_store }),
                srcs: [Tok(s0), Tok(s1)],
                dst: Tok(d),
                provenance: PROVS[p],
                region: REGIONS[r],
                taken,
            }
        })
        .boxed()
}

fn arb_trace() -> BoxedStrategy<Vec<Uop>> {
    proptest::collection::vec(arb_uop(), 0..700).boxed()
}

proptest! {
    #[test]
    fn round_trip_identity(trace in arb_trace()) {
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).expect("valid trace decodes");
        prop_assert_eq!(&trace, &back);

        // The streaming replay path must agree with frame-wise decode.
        let mut r = TraceReader::new(&bytes[..]).expect("header");
        let mut sink = VecSink::new();
        let n = r.replay(&mut sink).expect("replays");
        prop_assert_eq!(n, trace.len() as u64);
        prop_assert_eq!(&sink.uops, &trace);
    }

    #[test]
    fn truncation_is_typed(trace in arb_trace(), cut in any::<u64>()) {
        let bytes = encode_trace(&trace);
        let len = (cut % bytes.len() as u64) as usize; // strict prefix
        match decode_trace(&bytes[..len]) {
            Err(TraceError::Truncated { .. }) | Err(TraceError::Corrupt { .. }) => {}
            Err(TraceError::BadMagic) | Err(TraceError::BadVersion(_)) => {
                prop_assert!(len < 5, "magic errors only from header prefixes");
            }
            Ok(_) => prop_assert!(false, "strict prefix of {len} bytes decoded"),
            Err(TraceError::Io(e)) => prop_assert!(false, "unexpected io error: {e}"),
        }
    }

    #[test]
    fn corruption_never_panics(
        trace in arb_trace(),
        flips in proptest::collection::vec((any::<u64>(), 1u8..=255), 1..8),
    ) {
        let mut bytes = encode_trace(&trace);
        for (pos, xor) in flips {
            let ix = (pos % bytes.len() as u64) as usize;
            bytes[ix] ^= xor;
        }
        // Either outcome is acceptable; a panic or abort is not.
        let _ = decode_trace(&bytes);
    }
}

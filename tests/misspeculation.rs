//! End-to-end misspeculation regression test.
//!
//! The optimizer speculates on the profiled type feedback (monomorphic
//! receiver map, smi operands). This test runs a hot loop long enough to
//! tier up, then breaks the speculated monomorphism mid-iteration: the
//! optimized code must take a misspeculation deoptimization and the
//! interpreter must finish the iteration such that the observable result
//! is identical to a never-optimized baseline run. We assert both the
//! value/output equality *and* that a deopt actually happened, so the
//! test cannot silently pass by never tiering up.

use checkelide::engine::{EngineConfig, Mechanism, Vm};
use checkelide::isa::NullSink;

/// The property read in `f` is monomorphic smi for the first 30
/// iterations; at i == 30 the receiver's `v` flips to a string, which
/// invalidates both the speculated map check and the speculated smi
/// arithmetic inside the optimized body of `f`.
const PROGRAM: &str = r#"
function C() { this.v = 2; }
function f(o) { return o.v + 1; }
var c = new C();
var s = "";
for (var i = 0; i < 40; i++) {
  if (i == 30) { c.v = "str"; }
  s = s + f(c);
}
print(s);
return s;
"#;

struct Run {
    value: String,
    output: Vec<String>,
    deopts: u32,
    optimized_entries: u64,
    bbv_versions: u64,
    bbv_cap_fallbacks: u64,
}

fn run(config: EngineConfig) -> Run {
    run_src(config, PROGRAM)
}

fn run_src(config: EngineConfig, src: &str) -> Run {
    let opt = config.opt_enabled;
    let mut vm = Vm::new(config);
    if opt {
        checkelide::opt::install_optimizer(&mut vm);
    }
    // Drain any output left behind by a previously failing test.
    let _ = checkelide::runtime::take_output();
    let mut sink = NullSink::new();
    let value = vm.run_program(src, &mut sink).expect("program runs");
    Run {
        value: vm.rt.to_display_string(value),
        output: checkelide::runtime::take_output(),
        deopts: vm.funcs.iter().map(|f| f.deopt_count).sum(),
        optimized_entries: vm.stats.opt_entries,
        bbv_versions: vm.stats.bbv_versions,
        bbv_cap_fallbacks: vm.stats.bbv_cap_fallbacks,
    }
}

fn baseline() -> Run {
    run(EngineConfig { mechanism: Mechanism::Off, opt_enabled: false, ..Default::default() })
}

#[test]
fn deopt_after_shape_flip_is_transparent() {
    let base = baseline();
    // Sanity: the baseline itself is deopt-free and produces the string
    // tail only after iteration 30.
    assert_eq!(base.deopts, 0);
    assert!(
        base.value.contains("3str1") && base.value.ends_with("str1"),
        "unexpected baseline value {}",
        base.value
    );

    // The two scalar tiers, then both again with BBV block versioning on
    // top: the shape flip lands in a *specialized* block version, whose
    // deopt must be just as transparent.
    for (mechanism, bbv) in [
        (Mechanism::ProfileOnly, false),
        (Mechanism::Full, false),
        (Mechanism::ProfileOnly, true),
        (Mechanism::Full, true),
    ] {
        let opt = run(EngineConfig {
            mechanism,
            opt_enabled: true,
            opt_threshold: 2,
            bbv,
            ..Default::default()
        });
        assert_eq!(opt.value, base.value, "final value diverged under {mechanism:?}/bbv={bbv}");
        assert_eq!(
            opt.output, base.output,
            "printed output diverged under {mechanism:?}/bbv={bbv}"
        );
        assert!(
            opt.optimized_entries > 0,
            "loop never entered optimized code under {mechanism:?}/bbv={bbv}; the test is vacuous"
        );
        assert!(
            opt.deopts > 0,
            "shape flip at i == 30 did not trigger a deopt under {mechanism:?}/bbv={bbv}"
        );
        if bbv {
            assert!(opt.bbv_versions > 0, "bbv run materialized no block versions");
        }
    }
}

/// Seven distinct argument type shapes hit `f`'s entry block: SMI,
/// heap number, string, bool, and three hidden classes. That exceeds the
/// per-block version cap (5), so later shapes must fall back to the
/// generic version — with observables identical to the never-optimized
/// baseline.
const CAP_PROGRAM: &str = r#"
function A() { this.v = 1; }
function B() { this.w = 1; this.v = 2; }
function C() { this.u = 1; this.t = 2; this.v = 3; }
function f(x) {
  var s = 0;
  for (var i = 0; i < 6; i++) { s = s + i; }
  return s;
}
var a = new A();
var b = new B();
var c = new C();
var t = 0;
for (var j = 0; j < 40; j++) {
  t = t + f(1) + f(1.5) + f("s") + f(true) + f(a) + f(b) + f(c);
}
print(t);
return t;
"#;

#[test]
fn bbv_version_cap_falls_back_to_generic_transparently() {
    let base = run_src(
        EngineConfig { mechanism: Mechanism::Off, opt_enabled: false, ..Default::default() },
        CAP_PROGRAM,
    );
    assert_eq!(base.deopts, 0);
    for mechanism in [Mechanism::ProfileOnly, Mechanism::Full] {
        let opt = run_src(
            EngineConfig {
                mechanism,
                opt_enabled: true,
                opt_threshold: 2,
                bbv: true,
                ..Default::default()
            },
            CAP_PROGRAM,
        );
        assert_eq!(opt.value, base.value, "final value diverged under {mechanism:?}+bbv");
        assert_eq!(opt.output, base.output, "printed output diverged under {mechanism:?}+bbv");
        assert!(
            opt.optimized_entries > 0,
            "f never entered optimized code under {mechanism:?}+bbv; the test is vacuous"
        );
        assert!(
            opt.bbv_cap_fallbacks > 0,
            "seven entry shapes never overflowed the version cap under {mechanism:?}+bbv"
        );
    }
}

#[test]
fn deopt_budget_exhaustion_is_transparent() {
    // With max_deopts = 1 the function is permanently kicked back to the
    // interpreter after its first misspeculation; observables must still
    // match the baseline.
    let base = baseline();
    let opt = run(EngineConfig {
        mechanism: Mechanism::Full,
        opt_enabled: true,
        opt_threshold: 2,
        max_deopts: 1,
        ..Default::default()
    });
    assert_eq!(opt.value, base.value, "final value diverged under low deopt budget");
    assert_eq!(opt.output, base.output, "printed output diverged under low deopt budget");
    assert!(opt.deopts > 0, "expected at least one deopt before the budget kicked in");
}

#[test]
fn reference_interpreter_agrees_on_the_misspeculation_program() {
    // The same program must also clear the full differential oracle
    // (reference interpreter vs all six engine configurations,
    // including the BBV ones).
    assert!(
        checkelide_xcheck::check_source(PROGRAM).is_none(),
        "xcheck oracle found a divergence on the misspeculation program"
    );
}

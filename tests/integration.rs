//! Cross-crate integration tests through the `checkelide` facade:
//! differential execution across all three engine configurations,
//! including randomized program generation.

use checkelide::engine::{EngineConfig, Mechanism, Vm};
use checkelide::isa::NullSink;
use checkelide::Session;

fn run_all_configs(src: &str, global: &str) -> (String, String, String) {
    let run = |mech: Mechanism, opt: bool| {
        let mut vm = Vm::new(EngineConfig { mechanism: mech, opt_enabled: opt, ..Default::default() });
        if opt {
            checkelide::opt::install_optimizer(&mut vm);
        }
        let mut sink = NullSink::new();
        vm.run_program(src, &mut sink).expect("program runs");
        let v = vm.global_value(global).expect("result global");
        vm.rt.to_display_string(v)
    };
    (run(Mechanism::Off, false), run(Mechanism::ProfileOnly, true), run(Mechanism::Full, true))
}

/// A tiny deterministic generator of well-formed njs programs exercising
/// objects, arrays, arithmetic and type morphing.
struct ProgramGen {
    rng: u64,
}

impl ProgramGen {
    fn new(seed: u64) -> ProgramGen {
        ProgramGen { rng: seed.wrapping_mul(2654435761).wrapping_add(99991) }
    }

    fn next(&mut self, n: u64) -> u64 {
        self.rng = self.rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.rng >> 33) % n
    }

    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 {
            return match self.next(5) {
                0 => format!("{}", self.next(100)),
                1 => format!("{}.5", self.next(50)),
                2 => "o.a".to_string(),
                3 => "o.b".to_string(),
                _ => format!("arr[{}]", self.next(4)),
            };
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        match self.next(7) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} & {b})"),
            4 => format!("({a} | 0) ^ ({b} | 0)"),
            5 => format!("(({a}) < ({b}) ? {a} : {b})"),
            _ => format!("Math.abs({a} - {b})"),
        }
    }

    fn program(&mut self) -> String {
        let mut body = String::new();
        body.push_str(
            "function T(a, b) { this.a = a; this.b = b; }\n\
             var o = new T(3, 4.5);\n\
             var arr = [1, 2, 3, 4];\n\
             var acc = 0;\n",
        );
        let stmts = 3 + self.next(5);
        for i in 0..stmts {
            let e = self.expr(2);
            match self.next(4) {
                0 => body.push_str(&format!("acc += {e};\n")),
                1 => body.push_str(&format!("o.a = {e};\n")),
                2 => body.push_str(&format!("arr[{}] = {e};\n", self.next(5))),
                _ => body.push_str(&format!(
                    "for (var i{i} = 0; i{i} < {}; i{i}++) acc += {e};\n",
                    2 + self.next(20)
                )),
            }
        }
        format!(
            "{body}\nfunction loop() {{\n  var s = 0;\n  for (var k = 0; k < 40; k++) {{ {} }}\n  return s;\n}}\n\
             var r = 0;\nfor (var w = 0; w < 12; w++) r = loop() + acc;\n",
            {
                let e = self.expr(2);
                format!("s += {e} + o.a + o.b + arr[1];")
            }
        )
    }
}

#[test]
fn randomized_programs_agree_across_tiers() {
    for seed in 0..25u64 {
        let src = ProgramGen::new(seed).program();
        let (base, opt, full) = run_all_configs(&src, "r");
        assert_eq!(base, opt, "seed {seed}: baseline vs optimized\n{src}");
        assert_eq!(base, full, "seed {seed}: baseline vs full mechanism\n{src}");
    }
}

#[test]
fn type_morphing_program_agrees_and_raises_exceptions() {
    let src = "function H(v) { this.v = v; }
         function get(h) { return h.v; }
         var hs = [];
         for (var i = 0; i < 60; i++) hs.push(new H(i));
         var r = 0;
         for (var k = 0; k < 30; k++) for (var i = 0; i < 60; i++) r += get(hs[i]);
         hs[3].v = 1.5;           // SMI -> double
         hs[4].v = 'str';         // -> string
         hs[5].v = new H(0);      // -> object
         for (var i = 0; i < 60; i++) r += get(hs[i]) == undefined ? 0 : 1;";
    let (base, opt, full) = run_all_configs(src, "r");
    assert_eq!(base, opt);
    assert_eq!(base, full);
}

#[test]
fn in_place_class_mutation_is_detected() {
    // The soundness case from DESIGN.md: an object already stored in a
    // profiled slot transitions its own hidden class. The mechanism must
    // not keep using the stale profile.
    let src = "function Item(v) { this.v = v; }
         function Holder(item) { this.item = item; }
         function get(h) { return h.item.v; }
         var hs = [];
         for (var i = 0; i < 50; i++) hs.push(new Holder(new Item(i)));
         var r = 0;
         for (var k = 0; k < 30; k++) for (var i = 0; i < 50; i++) r += get(hs[i]);
         // Mutate an Item's class in place (no store to .item anywhere).
         hs[0].item.extra = 'x';
         hs[0].item.more = 'y';
         var tail = 0;
         for (var i = 0; i < 50; i++) tail += get(hs[i]);
         r = r + tail;";
    let (base, opt, full) = run_all_configs(src, "r");
    assert_eq!(base, opt);
    assert_eq!(base, full, "stale class profile survived an in-place transition");
}

#[test]
fn session_facade_round_trip() {
    let mut s = Session::full();
    s.eval_counted(
        "function fact(n) { return n < 2 ? 1 : n * fact(n - 1); }
         var r = fact(10);",
    )
    .unwrap();
    assert_eq!(s.global("r").unwrap(), "3628800");
    assert!(s.counters.total() > 100);
    let v = s.call("fact", &[6]).unwrap();
    assert_eq!(s.display(v), "720");
}

#[test]
fn whole_pipeline_through_uarch() {
    use checkelide::isa::trace::Tee;
    use checkelide::isa::CounterSink;
    use checkelide::uarch::{CoreConfig, CoreSim};

    let mut vm = Vm::new(EngineConfig { mechanism: Mechanism::Full, ..Default::default() });
    checkelide::opt::install_optimizer(&mut vm);
    let mut counters = CounterSink::new();
    let mut sim = CoreSim::new(CoreConfig::nehalem());
    {
        let mut tee = Tee::new(&mut counters, &mut sim);
        vm.run_program(
            "function P(x) { this.x = x; }
             function sum(ps, n) { var s = 0; for (var i = 0; i < n; i++) s += ps[i].x; return s; }
             var ps = [];
             for (var i = 0; i < 100; i++) ps.push(new P(i));
             var r = 0;
             for (var k = 0; k < 20; k++) r = sum(ps, 100);",
            &mut tee,
        )
        .unwrap();
    }
    let res = sim.result();
    assert_eq!(res.uops, counters.total(), "sim and counters see the same trace");
    assert!(res.cycles > 0);
    assert!(res.ipc() > 0.3 && res.ipc() < 4.0, "IPC {}", res.ipc());
    assert!(res.energy_pj > 0.0);
    assert_eq!(vm.global_value("r").unwrap().as_smi(), 4950);
}

#[test]
fn stack_overflow_is_an_error_not_a_crash() {
    let mut s = Session::full();
    let err = s.eval("function f() { return f(); } f();").unwrap_err();
    assert!(err.message.contains("stack overflow"));
}

#[test]
fn deterministic_uop_counts_across_runs() {
    let src = "function W(v) { this.v = v; }
         var s = 0;
         for (var i = 0; i < 200; i++) s += new W(i).v;
         var r = s;";
    let count = |_: u32| {
        let mut s = Session::full();
        s.eval_counted(src).unwrap();
        s.counters.total()
    };
    assert_eq!(count(0), count(1), "trace generation must be deterministic");
}

//! Quick-scale smoke runs of every experiment driver: each figure/table
//! must produce well-formed rows with the paper's qualitative properties.

use checkelide::bench::figures;

#[test]
fn fig1_rows_sum_to_100() {
    // Use a subset via direct runner calls to keep the smoke test fast.
    for name in ["richards", "ai-astar", "bitops-bits-in-byte"] {
        let b = checkelide::bench::find(name).unwrap();
        let out = checkelide::bench::run_benchmark(
            b,
            checkelide::bench::RunConfig::characterize().with_scale(2).with_iterations(3),
        );
        let row = out.counters.fig1_row();
        let sum: f64 = row.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6, "{name}: breakdown sums to {sum}");
        assert!(row.iter().all(|&x| (0.0..=100.0).contains(&x)));
    }
}

#[test]
fn fig2_object_heavy_beats_scalar_kernels() {
    let pct = |name: &str| {
        let b = checkelide::bench::find(name).unwrap();
        let out = checkelide::bench::run_benchmark(
            b,
            checkelide::bench::RunConfig::characterize().with_scale(2).with_iterations(3),
        );
        out.counters.fig2_optimized_pct()
    };
    let astar = pct("ai-astar");
    let bitops = pct("bitops-bits-in-byte");
    assert!(
        astar > bitops + 1.0,
        "object-heavy ai-astar ({astar:.1}%) must show more check-after-load overhead \
         than scalar bitops ({bitops:.1}%)"
    );
    assert!(bitops < 1.0, "bitops is one of the paper's zero-overhead benchmarks, got {bitops:.1}%");
}

#[test]
fn fig3_object_benchmarks_are_mostly_monomorphic() {
    let b = checkelide::bench::find("ai-astar").unwrap();
    let out = checkelide::bench::run_benchmark(
        b,
        checkelide::bench::RunConfig::characterize().with_scale(2).with_iterations(3),
    );
    assert!(
        out.fig3.mono_total() > 80.0,
        "ai-astar's object loads are overwhelmingly monomorphic, got {:?}",
        out.fig3
    );
}

#[test]
fn fig8_mechanism_wins_on_the_headline_benchmark() {
    let b = checkelide::bench::find("ai-astar").unwrap();
    let row = figures::fig89_one(b, true);
    assert!(
        row.speedup_whole > 2.0,
        "ai-astar must show a clear speedup even at quick scale, got {:.1}%",
        row.speedup_whole
    );
    assert!(row.full_uops < row.base_uops, "the mechanism removes dynamic instructions");
    assert!(row.class_cache_hit > 0.99, "paper §5.3.3: hit rate > 99.9%");
    assert!(row.energy_whole > 0.0, "figure 9 direction");
}

#[test]
fn pool_preserves_order_and_isolates_a_panicking_cell() {
    use checkelide::bench::{pool, try_run_benchmark, RunConfig};
    let names = ["richards", "ai-astar", "bitops-bits-in-byte"];
    let cells: Vec<(String, &str)> = names.iter().map(|n| (n.to_string(), *n)).collect();
    let outcomes = pool::run_cells(cells, 2, |name: &&str| {
        if *name == "ai-astar" {
            panic!("deliberate cell failure");
        }
        let b = checkelide::bench::find(name).unwrap();
        try_run_benchmark(b, RunConfig::characterize().with_scale(2).with_iterations(2))
            .map(|o| o.uops)
    });
    // Results come back in input order regardless of scheduling.
    assert_eq!(outcomes.len(), 3);
    for (outcome, name) in outcomes.iter().zip(names) {
        assert_eq!(outcome.label, name);
    }
    // The panicking cell is a reported CellError; its siblings completed.
    assert!(matches!(&outcomes[0].result, Ok(Ok(uops)) if *uops > 0));
    let err = outcomes[1].result.as_ref().expect_err("panic captured");
    assert!(err.message.contains("deliberate cell failure"), "{}", err.message);
    assert!(matches!(&outcomes[2].result, Ok(Ok(uops)) if *uops > 0));
}

#[test]
fn table2_and_hwcost_hold_paper_claims() {
    let cfg = checkelide::uarch::CoreConfig::nehalem();
    assert_eq!(cfg.issue_width, 4);
    assert_eq!(cfg.class_cache.entries, 128);
    let bytes = checkelide::core::hwcost::class_cache_storage_bytes(&cfg.class_cache);
    assert!(bytes < 1536, "§5.4: Class Cache must fit in 1.5 KB, got {bytes}");
}

#[test]
fn overheads_driver_produces_sane_rows() {
    let b = checkelide::bench::find("deltablue").unwrap();
    let out = checkelide::bench::run_benchmark(
        b,
        checkelide::bench::RunConfig::mechanism_timed().with_scale(2).with_iterations(3),
    );
    assert!(out.class_cache.accesses > 0);
    assert!(out.class_cache.hit_rate() > 0.9);
    assert!(out.hidden_classes < 60, "§5.3.1: small class populations");
    assert!(out.obj_stats.objects > 0);
}
